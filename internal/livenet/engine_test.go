package livenet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/query"
)

// waitInFlight polls until the node's in-flight gauge reaches at least
// want, failing the test after the deadline.
func waitInFlight(t *testing.T, n *Node, want int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if n.InFlight() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("in-flight gauge never reached %d (now %d)", want, n.InFlight())
}

// impossibleWant returns a demand no query can satisfy, so the query
// stays pending until its deadline.
func impossibleWant(totalDocs int) int { return totalDocs + 100 }

// TestHundredConcurrentInFlightQueries holds ≥ 100 queries in flight on
// ONE node simultaneously and checks every one of them completes exactly
// once — no lost queries, no double completions, and the pending table
// drains back to zero.
func TestHundredConcurrentInFlightQueries(t *testing.T) {
	c, inst := launchSmall(t, 21)
	n := c.Nodes[0]
	cat := bigCategory(inst)
	const concurrent = 120
	want := impossibleWant(len(inst.Catalog.Docs))

	var wg sync.WaitGroup
	var mu sync.Mutex
	completions := 0
	timeouts := 0
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			out, err := n.QueryContext(ctx, cat, want)
			mu.Lock()
			defer mu.Unlock()
			completions++
			if errors.Is(err, ErrTimeout) {
				timeouts++
				if out.Done {
					t.Error("timed-out query reported done")
				}
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	waitInFlight(t, n, 100, 2*time.Second)
	wg.Wait()
	if completions != concurrent {
		t.Errorf("%d of %d queries completed", completions, concurrent)
	}
	if timeouts == 0 {
		t.Error("impossible demand produced no timeouts")
	}
	if got := n.InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after all queries returned, want 0", got)
	}
	s := n.Stats()
	if total := s["queries_ok"] + s["query_timeouts"] + s["query_cancelled"]; total != concurrent {
		t.Errorf("queries_ok+query_timeouts+query_cancelled = %d, want %d", total, concurrent)
	}
}

// TestConcurrentSatisfiableQueries runs many completable queries at once
// from one origin and checks they all succeed with correct results.
func TestConcurrentSatisfiableQueries(t *testing.T) {
	c, inst := launchSmall(t, 22)
	n := c.Nodes[1]
	cat := bigCategory(inst)
	const concurrent = 50
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			out, err := n.QueryContext(ctx, cat, 2)
			if err != nil {
				errs <- err
				return
			}
			if !out.Done || out.Results < 2 || len(out.Docs) != out.Results {
				t.Errorf("outcome: %+v", out)
			}
		}()
	}
	wg.Wait()
	close(errs)
	failed := 0
	for range errs {
		failed++
	}
	if failed > concurrent/10 {
		t.Errorf("%d of %d concurrent queries failed", failed, concurrent)
	}
	if got := n.InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after drain, want 0", got)
	}
}

// TestCancellationReleasesSlot cancels a query mid-flight and checks the
// in-flight slot frees immediately (not at the would-be deadline) and the
// cancellation is counted.
func TestCancellationReleasesSlot(t *testing.T) {
	c, inst := launchSmall(t, 23)
	n := c.Nodes[2]
	cat := bigCategory(inst)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := n.QueryContext(ctx, cat, impossibleWant(len(inst.Catalog.Docs)))
		done <- err
	}()
	waitInFlight(t, n, 1, 2*time.Second)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled query returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	end := time.Now().Add(time.Second)
	for n.InFlight() != 0 && time.Now().Before(end) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.InFlight(); got != 0 {
		t.Errorf("in-flight slot not released after cancel: %d", got)
	}
	if n.Stats()["query_cancelled"] != 1 {
		t.Errorf("query_cancelled = %d, want 1", n.Stats()["query_cancelled"])
	}
}

// TestAdmissionControlRejectsAtLimit fills the in-flight table to a small
// limit and checks the next query is rejected with ErrOverloaded instead
// of queueing.
func TestAdmissionControlRejectsAtLimit(t *testing.T) {
	c, inst := launchSmall(t, 24)
	n := c.Nodes[3]
	cat := bigCategory(inst)
	const limit = 4
	n.SetMaxInFlight(limit)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.QueryContext(ctx, cat, impossibleWant(len(inst.Catalog.Docs)))
		}()
	}
	waitInFlight(t, n, limit, 2*time.Second)
	_, err := n.QueryContext(context.Background(), cat, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("query over the limit returned %v, want ErrOverloaded", err)
	}
	if n.Stats()["query_rejected"] == 0 {
		t.Error("rejection not counted")
	}
	cancel()
	wg.Wait()
	// With the slots released, admission lets queries through again.
	if _, err := n.Query(cat, 1, 5*time.Second); err != nil {
		t.Errorf("query after slots freed: %v", err)
	}
}

// TestCacheHitShortCircuitsRepeatQuery checks the requester-side cache:
// a second identical query is answered locally in zero hops without any
// network traffic.
func TestCacheHitShortCircuitsRepeatQuery(t *testing.T) {
	c, inst := launchSmall(t, 25)
	n := c.Nodes[4]
	cat := bigCategory(inst)
	first, err := n.Query(cat, 3, 5*time.Second)
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	if first.Hops < 1 {
		t.Fatalf("first query hops = %d, want ≥ 1", first.Hops)
	}
	sends := n.Stats()["transport_sends"]
	second, err := n.Query(cat, 3, 5*time.Second)
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if !second.Done || second.Hops != 0 {
		t.Errorf("repeat query not served from cache: %+v", second)
	}
	if got := n.Stats()["transport_sends"]; got != sends {
		t.Errorf("repeat query sent %d messages, want 0", got-sends)
	}
	s := n.Stats()
	if s["cache_hit"] != 1 || s["cache_miss"] != 1 {
		t.Errorf("cache_hit=%d cache_miss=%d, want 1 and 1", s["cache_hit"], s["cache_miss"])
	}
	// The cached docs are real members of the category.
	for _, d := range second.Docs {
		if inst.Catalog.Doc(d).Categories[0] != cat {
			t.Errorf("cached doc %d not in category %d", d, cat)
		}
	}
}

// TestCacheDisabledAlwaysGoesToNetwork turns the cache off and checks
// repeat queries still traverse the overlay.
func TestCacheDisabledAlwaysGoesToNetwork(t *testing.T) {
	c, inst := launchSmall(t, 26)
	n := c.Nodes[5]
	if err := n.SetCacheCapacity(cache.LRU, 0); err != nil {
		t.Fatal(err)
	}
	cat := bigCategory(inst)
	for i := 0; i < 2; i++ {
		out, err := n.Query(cat, 2, 5*time.Second)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if out.Hops == 0 {
			t.Errorf("query %d reported zero hops with caching disabled", i)
		}
	}
	s := n.Stats()
	if s["cache_hit"] != 0 || s["cache_miss"] != 0 {
		t.Errorf("cache counters moved while disabled: hit=%d miss=%d", s["cache_hit"], s["cache_miss"])
	}
}

// TestQueryContextPreCancelled checks a context that is already dead is
// rejected without touching the pending table.
func TestQueryContextPreCancelled(t *testing.T) {
	c, inst := launchSmall(t, 27)
	n := c.Nodes[6]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.QueryContext(ctx, bigCategory(inst), 1); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx returned %v", err)
	}
	if got := n.InFlight(); got != 0 {
		t.Errorf("pre-cancelled query left %d pending entries", got)
	}
}

// TestSharedResultTypeAndErrors pins the API unification: livenet's
// outcome IS the shared query.Result, and the sentinel errors match
// across packages with errors.Is.
func TestSharedResultTypeAndErrors(t *testing.T) {
	var out QueryOutcome
	var _ query.Result = out // compile-time: same type
	if !errors.Is(ErrTimeout, query.ErrTimeout) ||
		!errors.Is(ErrNoRoute, query.ErrNoRoute) ||
		!errors.Is(ErrClosed, query.ErrClosed) ||
		!errors.Is(ErrOverloaded, query.ErrOverloaded) {
		t.Error("livenet sentinels do not match internal/query sentinels")
	}
}

// TestQueryNoRouteUnknownCategory checks the fail-fast path still returns
// the (now shared) ErrNoRoute sentinel.
func TestQueryNoRouteUnknownCategory(t *testing.T) {
	c, inst := launchSmall(t, 28)
	n := c.Nodes[0]
	bogus := catalog.CategoryID(len(inst.Catalog.Cats) + 50)
	if _, err := n.QueryContext(context.Background(), bogus, 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("unroutable category returned %v, want ErrNoRoute", err)
	}
}
