// Package livenet runs the architecture's query and publish protocols
// over real TCP sockets — one OS process, many peers, each with its own
// listener, event loop, and metadata tables (DT/DCRT/NRT). The simulated
// overlay (internal/overlay) is the instrument for experiments; livenet
// demonstrates that the same protocols work over an actual network with
// goroutines and sockets, and is the natural starting point for a
// multi-host deployment.
//
// Concurrency model: each peer runs a single event-loop goroutine that
// owns all peer state. The TCP accept loop and the public API feed it
// through one channel, so handlers are lock-free and ordering per peer is
// serial — the same discipline the paper's per-node protocol descriptions
// assume.
package livenet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
)

func init() {
	// Wire messages reused from the overlay package.
	gob.Register(overlay.QueryMsg{})
	gob.Register(overlay.ResultMsg{})
	gob.Register(overlay.PublishMsg{})
	gob.Register(overlay.PublishAckMsg{})
}

// envelope frames every wire message with its sender.
type envelope struct {
	From model.NodeID
	Msg  any
}

// QueryOutcome is the result of a live query.
type QueryOutcome struct {
	// Done is true when the requested number of distinct documents
	// arrived before the deadline.
	Done bool
	// Docs are the distinct documents received.
	Docs []catalog.DocID
	// Hops is the forwarding distance of the completing result.
	Hops int
}

// pendingQuery tracks a query issued by this node.
type pendingQuery struct {
	want int
	docs map[catalog.DocID]bool
	hops int
	ch   chan QueryOutcome
}

// command is an API request executed inside the event loop.
type command func(*Node)

// Node is one live peer.
type Node struct {
	id   model.NodeID
	inst *model.Instance
	ln   net.Listener
	rng  *rand.Rand

	// book maps node ids to listen addresses (shared, read-only after
	// launch).
	book map[model.NodeID]string

	inbox chan envelope
	cmds  chan command
	done  chan struct{}
	wg    sync.WaitGroup

	// Peer state — owned by the event loop.
	dt      map[catalog.DocID]catalog.CategoryID
	byCat   map[catalog.CategoryID][]catalog.DocID
	dcrt    map[catalog.CategoryID]overlay.DCRTEntry
	nrt     map[model.ClusterID][]model.NodeID
	seen    map[uint64]bool
	pending map[uint64]*pendingQuery
	served  int64

	nextQuery uint64
}

// ID returns the node's id.
func (n *Node) ID() model.NodeID { return n.id }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Served returns how many requests this node has served (snapshot read
// through the event loop).
func (n *Node) Served() int64 {
	ch := make(chan int64, 1)
	select {
	case n.cmds <- func(n *Node) { ch <- n.served }:
		return <-ch
	case <-n.done:
		return 0
	}
}

// Cluster is a set of live peers sharing one address book.
type Cluster struct {
	Nodes []*Node
	inst  *model.Instance
}

// Launch starts one TCP peer per instance node on loopback ports, primes
// metadata exactly like the simulated overlay's bootstrap (full DCRT,
// ring-plus-chords NRT per cluster, remote contacts), and returns the
// running cluster. Close it when done.
func Launch(inst *model.Instance, assign []model.ClusterID, place *replica.Placement, seed int64) (*Cluster, error) {
	if len(assign) != len(inst.Catalog.Cats) {
		return nil, fmt.Errorf("livenet: assignment covers %d of %d categories",
			len(assign), len(inst.Catalog.Cats))
	}
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Cluster{inst: inst}
	book := make(map[model.NodeID]string, len(inst.Nodes))

	for k := range inst.Nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("livenet: listen: %w", err)
		}
		n := &Node{
			id:      inst.Nodes[k].ID,
			inst:    inst,
			ln:      ln,
			rng:     rand.New(rand.NewSource(seed + int64(k) + 1)),
			book:    book,
			inbox:   make(chan envelope, 256),
			cmds:    make(chan command, 16),
			done:    make(chan struct{}),
			dt:      make(map[catalog.DocID]catalog.CategoryID),
			byCat:   make(map[catalog.CategoryID][]catalog.DocID),
			dcrt:    make(map[catalog.CategoryID]overlay.DCRTEntry),
			nrt:     make(map[model.ClusterID][]model.NodeID),
			seen:    make(map[uint64]bool),
			pending: make(map[uint64]*pendingQuery),
		}
		book[n.id] = ln.Addr().String()
		c.Nodes = append(c.Nodes, n)
	}

	// Prime storage.
	for k, n := range c.Nodes {
		docs := inst.Nodes[k].Contributed
		if place != nil {
			docs = place.Stored[k]
		}
		for _, d := range docs {
			n.storeDoc(d)
		}
	}
	// Prime DCRTs.
	for cat, cl := range assign {
		if cl == model.NoCluster {
			continue
		}
		for _, n := range c.Nodes {
			n.dcrt[catalog.CategoryID(cat)] = overlay.DCRTEntry{Cluster: cl}
		}
	}
	// Prime NRTs: ring + chords within clusters, remote contacts across.
	for cl := 0; cl < inst.NumClusters; cl++ {
		members := append([]model.NodeID(nil), mem.NodesOf(model.ClusterID(cl))...)
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		link := func(a, b model.NodeID) {
			if a != b {
				c.Nodes[a].addNeighbor(model.ClusterID(cl), b)
				c.Nodes[b].addNeighbor(model.ClusterID(cl), a)
			}
		}
		for i, a := range members {
			link(a, members[(i+1)%len(members)])
			link(a, members[rng.Intn(len(members))])
		}
	}
	for _, n := range c.Nodes {
		for cl := 0; cl < inst.NumClusters; cl++ {
			if len(n.nrt[model.ClusterID(cl)]) > 0 {
				continue
			}
			members := mem.NodesOf(model.ClusterID(cl))
			if len(members) == 0 {
				continue
			}
			for i := 0; i < 3; i++ {
				n.addNeighbor(model.ClusterID(cl), members[rng.Intn(len(members))])
			}
		}
	}

	// Each node gets a private copy of the address book: handleHello and
	// handleBook mutate it inside the owning event loop, which would race
	// on a shared map.
	for _, n := range c.Nodes {
		private := make(map[model.NodeID]string, len(book))
		for id, addr := range book {
			private[id] = addr
		}
		n.book = private
	}

	for _, n := range c.Nodes {
		n.wg.Add(2)
		go n.acceptLoop()
		go n.eventLoop()
	}
	return c, nil
}

// newNodeRng derives a node-local random source.
func newNodeRng(seed int64, id model.NodeID) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(id) + 1))
}

// Close shuts every peer down and waits for their loops to exit.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		if n == nil {
			continue
		}
		select {
		case <-n.done:
		default:
			close(n.done)
		}
		n.ln.Close()
	}
	for _, n := range c.Nodes {
		if n != nil {
			n.wg.Wait()
		}
	}
}

func (n *Node) storeDoc(d catalog.DocID) {
	if _, ok := n.dt[d]; ok {
		return
	}
	cat := n.inst.Catalog.Doc(d).Categories[0]
	n.dt[d] = cat
	n.byCat[cat] = append(n.byCat[cat], d)
}

func (n *Node) addNeighbor(cl model.ClusterID, nb model.NodeID) {
	if nb == n.id {
		return
	}
	for _, m := range n.nrt[cl] {
		if m == nb {
			return
		}
	}
	n.nrt[cl] = append(n.nrt[cl], nb)
}

// acceptLoop turns incoming TCP connections into inbox envelopes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func(conn net.Conn) {
			defer conn.Close()
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			var env envelope
			if err := gob.NewDecoder(conn).Decode(&env); err != nil {
				return
			}
			select {
			case n.inbox <- env:
			case <-n.done:
			}
		}(conn)
	}
}

// eventLoop owns the node state.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case env := <-n.inbox:
			n.dispatch(env)
		case cmd := <-n.cmds:
			cmd(n)
		case <-n.done:
			return
		}
	}
}

func (n *Node) dispatch(env envelope) {
	switch m := env.Msg.(type) {
	case overlay.QueryMsg:
		n.handleQuery(m)
	case overlay.ResultMsg:
		n.handleResult(m)
	case overlay.PublishMsg:
		n.handlePublish(env.From, m)
	case overlay.PublishAckMsg:
		n.handlePublishAck(m)
	case helloMsg:
		n.handleHello(m)
	case bookMsg:
		n.handleBook(m)
	}
}

// send dials the target and writes one envelope (fire and forget — P2P
// messages are best-effort, exactly as in the simulator).
func (n *Node) send(to model.NodeID, msg any) {
	addr, ok := n.book[to]
	if !ok {
		return
	}
	go func() {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_ = gob.NewEncoder(conn).Encode(envelope{From: n.id, Msg: msg})
	}()
}

// ErrTimeout reports a query that did not complete before its deadline.
var ErrTimeout = errors.New("livenet: query timed out")

// Query runs the §3.3 protocol for a category over the live network and
// blocks until m distinct documents arrive or the timeout expires (in
// which case the partial outcome and ErrTimeout are returned).
func (n *Node) Query(cat catalog.CategoryID, m int, timeout time.Duration) (QueryOutcome, error) {
	ch := make(chan QueryOutcome, 1)
	var issued bool
	select {
	case n.cmds <- func(n *Node) {
		n.nextQuery++
		id := n.nextQuery<<16 | uint64(n.id)&0xffff
		pq := &pendingQuery{want: m, docs: make(map[catalog.DocID]bool), ch: ch}
		n.pending[id] = pq
		entry, ok := n.dcrt[cat]
		if !ok {
			entry = overlay.DCRTEntry{Cluster: 0}
		}
		members := n.nrt[entry.Cluster]
		if len(members) == 0 {
			ch <- QueryOutcome{}
			delete(n.pending, id)
			return
		}
		target := members[n.rng.Intn(len(members))]
		n.send(target, overlay.QueryMsg{
			ID: id, Category: cat, Want: m, Origin: n.id, Hops: 1, Entry: true,
		})
	}:
		issued = true
	case <-n.done:
	}
	if !issued {
		return QueryOutcome{}, errors.New("livenet: node closed")
	}
	select {
	case out := <-ch:
		if !out.Done && out.Docs == nil {
			return out, errors.New("livenet: no route to category cluster")
		}
		return out, nil
	case <-time.After(timeout):
		// Collect the partial state.
		partial := make(chan QueryOutcome, 1)
		select {
		case n.cmds <- func(n *Node) {
			// Find the pending query (by scanning — the id is internal).
			for id, pq := range n.pending {
				if pq.ch == ch {
					out := QueryOutcome{Hops: pq.hops}
					for d := range pq.docs {
						out.Docs = append(out.Docs, d)
					}
					delete(n.pending, id)
					partial <- out
					return
				}
			}
			partial <- QueryOutcome{}
		}:
			return <-partial, ErrTimeout
		case <-n.done:
			return QueryOutcome{}, ErrTimeout
		}
	}
}

// handleQuery mirrors the simulated overlay's §3.3 target-node logic.
func (n *Node) handleQuery(m overlay.QueryMsg) {
	if n.seen[m.ID] {
		return
	}
	n.seen[m.ID] = true
	entry, ok := n.dcrt[m.Category]
	if !ok {
		entry = overlay.DCRTEntry{Cluster: 0}
	}
	var matches []catalog.DocID
	for _, d := range n.byCat[m.Category] {
		matches = append(matches, d)
		if len(matches) == m.Want {
			break
		}
	}
	if len(matches) > 0 {
		n.served++
		n.send(m.Origin, overlay.ResultMsg{
			ID: m.ID, Docs: matches, Hops: m.Hops, From: n.id,
		})
	}
	if remaining := m.Want - len(matches); remaining > 0 {
		for _, nb := range n.nrt[entry.Cluster] {
			n.send(nb, overlay.QueryMsg{
				ID: m.ID, Category: m.Category, Want: remaining,
				Origin: m.Origin, Hops: m.Hops + 1,
			})
		}
	}
}

func (n *Node) handleResult(m overlay.ResultMsg) {
	pq, ok := n.pending[m.ID]
	if !ok {
		return
	}
	for _, d := range m.Docs {
		pq.docs[d] = true
	}
	if m.Hops > pq.hops {
		pq.hops = m.Hops
	}
	if len(pq.docs) >= pq.want {
		out := QueryOutcome{Done: true, Hops: m.Hops}
		for d := range pq.docs {
			out.Docs = append(out.Docs, d)
		}
		pq.ch <- out
		delete(n.pending, m.ID)
	}
}

// Publish announces a (locally stored) document to the cluster serving
// its category — the §6.2 protocol over TCP.
func (n *Node) Publish(d catalog.DocID) error {
	doc := n.inst.Catalog.Doc(d)
	if doc == nil {
		return fmt.Errorf("livenet: unknown document %d", d)
	}
	select {
	case n.cmds <- func(n *Node) {
		n.storeDoc(d)
		cat := doc.Categories[0]
		entry, ok := n.dcrt[cat]
		if !ok {
			entry = overlay.DCRTEntry{Cluster: 0}
		}
		for i, nb := range n.nrt[entry.Cluster] {
			if i == 3 {
				break
			}
			n.send(nb, overlay.PublishMsg{Doc: d, Category: cat, Publisher: n.id})
		}
	}:
		return nil
	case <-n.done:
		return errors.New("livenet: node closed")
	}
}

func (n *Node) handlePublish(from model.NodeID, m overlay.PublishMsg) {
	entry, known := n.dcrt[m.Category]
	if !known {
		entry = overlay.DCRTEntry{Cluster: 0}
		n.dcrt[m.Category] = entry
	}
	accepted := false
	for _, nb := range n.nrt[entry.Cluster] {
		_ = nb
		accepted = true
		break
	}
	n.addNeighbor(entry.Cluster, m.Publisher)
	sample := n.nrt[entry.Cluster]
	if len(sample) > 8 {
		sample = sample[:8]
	}
	n.send(from, overlay.PublishAckMsg{
		Doc:      m.Doc,
		Category: m.Category,
		Entry:    entry,
		Accepted: accepted,
		Members:  append([]model.NodeID(nil), sample...),
	})
}

func (n *Node) handlePublishAck(m overlay.PublishAckMsg) {
	if old, ok := n.dcrt[m.Category]; !ok || m.Entry.MoveCounter > old.MoveCounter {
		n.dcrt[m.Category] = m.Entry
	}
	for _, nb := range m.Members {
		n.addNeighbor(m.Entry.Cluster, nb)
	}
}
