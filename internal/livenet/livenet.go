// Package livenet runs the architecture's query and publish protocols
// over real TCP sockets — one OS process, many peers, each with its own
// listener, event loop, and metadata tables (DT/DCRT/NRT). The simulated
// overlay (internal/overlay) is the instrument for experiments; livenet
// demonstrates that the same protocols work over an actual network with
// goroutines and sockets, and is the natural starting point for a
// multi-host deployment.
//
// Concurrency model: each peer's query engine is SHARDED — the pending
// query table, flood-dedup seen set, and query-id minting are
// partitioned across P shard loops keyed by query id (shard.go), and
// the per-connection reader goroutines dispatch decoded QueryMsg/
// ResultMsg frames straight to the owning shard, so a node's protocol
// work scales across cores instead of serializing on one loop. A
// dedicated control loop owns everything low-rate and topological:
// membership, adaptation, the address book, and the DT/DCRT/NRT routing
// tables, which shards read under an RWMutex (routeMu) the control loop
// alone writes. Queries are fully concurrent: each QueryContext call
// passes admission (an atomic reservation) and the requester cache in
// its own goroutine, registers an independent state machine on one
// shard, and only the issuing goroutine blocks, so one node sustains
// hundreds of in-flight queries at once (engine.go).
// Outbound messages go through a per-peer persistent-connection pool
// (transport.go): one framed stream per destination, reused across
// messages, with reconnect-on-failure and capped backoff. Streams speak
// the internal/wire v2 binary codec (negotiated at open; see DESIGN.md
// §10), batched many envelopes per syscall, with gob as the
// compatibility fallback for old peers.
package livenet

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/content"
	"p2pshare/internal/membership"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/query"
	"p2pshare/internal/replica"
	"p2pshare/internal/timerwheel"
	"p2pshare/internal/wire"
)

func init() {
	// Wire messages reused from the overlay package.
	gob.Register(overlay.QueryMsg{})
	gob.Register(overlay.ResultMsg{})
	gob.Register(overlay.PublishMsg{})
	gob.Register(overlay.PublishAckMsg{})
}

const (
	// sweepInterval paces the event loop's housekeeping tick: the seen
	// set rotates one generation (so loop-detection state lives between
	// one and two intervals instead of forever) and pending queries past
	// their deadline are expired.
	sweepInterval = 2 * time.Second
	// pendingGrace pads a pending query's expiry past the caller's own
	// timeout, so the sweep only reaps entries whose caller is gone.
	pendingGrace = 5 * time.Second
	// readIdleTimeout reaps inbound connections that go silent — a peer
	// that died without closing its socket.
	readIdleTimeout = 2 * time.Minute
	// readBufBytes sizes each inbound stream's read buffer.
	readBufBytes = 64 << 10
)

// envelope frames every wire message with its sender. One connection
// carries a stream of envelopes; internal/wire defines the layout for
// the v2 codec and gob frames the same type on fallback streams.
type envelope = wire.Envelope

// QueryOutcome is the result of a live query — an alias of the unified
// query.Result shared with the facade (re-exported by the root package
// as p2pshare.QueryResult).
type QueryOutcome = query.Result

// pendingQuery is one in-flight query's state machine, owned by the
// engine shard its id routes to. The issuing goroutine holds only the
// buffered result channel; everything else advances on received
// ResultMsgs and sweep ticks (deadline expiry, resend-on-silence).
type pendingQuery struct {
	id       uint64
	cat      catalog.CategoryID
	want     int // total distinct documents the caller asked for
	docs     map[catalog.DocID]bool
	received int // network results folded in (cache-primed docs excluded)
	hops     int
	ch       chan query.Result
	deadline time.Time // sweep backstop, padded past the caller's own deadline
	lastSend time.Time
	resends  int
	entry    []model.NodeID // reachable serving-cluster members (resend targets)
}

// result snapshots the outcome accumulated so far.
func (pq *pendingQuery) result(done bool) query.Result {
	out := query.Result{Done: done, Hops: pq.hops, Results: len(pq.docs)}
	if len(pq.docs) > 0 {
		out.Docs = make([]catalog.DocID, 0, len(pq.docs))
		for d := range pq.docs {
			out.Docs = append(out.Docs, d)
		}
	}
	return out
}

// command is an API request executed inside the control loop.
type command func(*Node)

// Node is one live peer.
type Node struct {
	id   model.NodeID
	inst *model.Instance
	ln   net.Listener
	rng  *rand.Rand

	inbox chan envelope // control messages (everything but Query/Result)
	cmds  chan command
	done  chan struct{}
	wg    sync.WaitGroup

	// shards partition the query engine (shard.go); nextShard
	// round-robins new queries across them.
	shards    []*engineShard
	nextShard atomic.Uint64

	// tr is the outbound persistent-connection pool; stats and latency
	// are shared with it and safe for concurrent use.
	tr      *transport
	stats   *metrics.SyncCounter
	latency *metrics.SyncHistogram

	// conns tracks accepted inbound connections so Close can unblock
	// their read loops.
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	// Routing and topology state. The control loop is the sole writer
	// and holds routeMu.Lock for every event it processes; engine shards
	// and API callers read under routeMu.RLock. book maps node ids to
	// listen addresses (handleHello and handleBook mutate it) —
	// copy-on-write over a cluster-shared base, see book.go.
	routeMu sync.RWMutex
	book    *addrBook
	dt      map[catalog.DocID]catalog.CategoryID
	byCat   map[catalog.CategoryID][]catalog.DocID
	dcrt    map[catalog.CategoryID]overlay.DCRTEntry
	nrt     map[model.ClusterID][]model.NodeID

	// served counts requests this node answered (shards increment).
	served atomic.Int64

	// inflightMax is the admission-control bound on pending queries
	// across all shards; inflight is the live reservation count (slots
	// are CAS-reserved by callers and released by the owning shard), so
	// the bound is exact even with every shard admitting at once.
	inflightMax atomic.Int64
	inflight    atomic.Int64

	// cacheSt is the requester-side document cache generation (§7 viii,
	// cachestate.go): results of completed queries are kept and repeat
	// queries answered in zero hops, checked in the caller goroutine.
	// SetCacheCapacity swaps the whole generation atomically; nil when
	// caching is disabled.
	cacheSt atomic.Pointer[cacheState]

	// det is the SWIM failure detector (membership.go); nil until
	// StartMembership. gauges holds the point-in-time membership and
	// fairness readings merged into Stats(). Both owned by the control
	// loop (gauges is itself concurrency-safe for the Stats() reader).
	det    *membership.Detector
	gauges *metrics.SyncGauge

	// adapt is the live adaptation state (adapt.go), nil until
	// EnableAdaptation; owned by the control loop. The §6.1.2 hit
	// counters feeding it live on the shards (drainHits).
	adapt *adaptState

	// Content data plane (transfer.go). store is the chunk store, nil
	// when Options.Content is unset — every serving and shipping path
	// checks. xfers demultiplexes Manifest/Chunk replies to waiting
	// Fetch callers by transfer id; rtt is the per-peer manifest
	// round-trip EWMA ordering fetch sources; prevCluster remembers,
	// per moved category, the shedding cluster that still holds the
	// bytes (routeMu-guarded, control loop writes). moveFetchers bounds
	// background move-shipping goroutines.
	store           *content.Store
	xferMu          sync.Mutex
	xfers           map[uint64]chan envelope
	xferSeq         atomic.Uint64
	fwdSeq          atomic.Uint64
	transfersActive atomic.Int64
	xferTput        *metrics.SyncHistogram
	rttMu           sync.Mutex
	rtt             map[model.NodeID]float64
	prevCluster     map[catalog.CategoryID]prevClusterRecord
	moveFetchers    atomic.Int64

	// moveMu guards the owed-document queue the move-shipping workers
	// drain (shipMovedDocs/moveFetchLoop): docs queue at the fetcher cap
	// instead of being dropped.
	moveMu      sync.Mutex
	movePending []catalog.DocID

	// Demand-driven replication state (transfer.go). demand counts
	// recent per-doc interest (own fetches + manifest requests seen) and
	// gates cache admission at cacheAdmit observations (0 = caching
	// off); servedDocs counts per-doc serve load drained each adaptation
	// epoch (lastServed keeps the previous window for hot-doc pushes,
	// control-loop owned); pullFetchers bounds concurrent background
	// replica pulls triggered by wire.Replicate.
	demandMu     sync.Mutex
	demand       map[catalog.DocID]int
	cacheAdmit   int
	serveMu      sync.Mutex
	servedDocs   map[catalog.DocID]int64
	lastServed   map[catalog.DocID]int64
	pullFetchers atomic.Int64
	// prevClusterTTLOverride shortens the shedding-cluster fallback TTL
	// in tests; 0 means the package default (prevClusterTTL).
	prevClusterTTLOverride time.Duration

	// legacyGob makes the node behave like a pre-v2 peer on inbound
	// streams: the preamble is never acked, so v2 senders fall back to
	// gob. Mixed-version testing only.
	legacyGob atomic.Bool

	// querySalt mints query ids: each shard's sequence is mixed with
	// this full-width node discriminant (see queryID in engine.go).
	querySalt uint64

	// stopTimers unregisters this node's periodic work from the shared
	// process-wide timerwheel (shard sweeps, membership probe clock,
	// adaptation epoch clock). Those used to be 3+ dedicated ticker
	// goroutines per node; at paper scale that alone was tens of
	// thousands of goroutines. Guarded by timersMu because subsystems
	// register from the control loop while shutdown may run concurrently.
	timersMu   sync.Mutex
	stopTimers []func()
}

// addTimer records a timerwheel stop function for shutdown — or runs it
// immediately when the node is already shut down (a subsystem enabled in
// the control loop racing Close).
func (n *Node) addTimer(stop func()) {
	n.timersMu.Lock()
	select {
	case <-n.done:
		n.timersMu.Unlock()
		stop()
		return
	default:
	}
	n.stopTimers = append(n.stopTimers, stop)
	n.timersMu.Unlock()
}

// newNode builds a Node with empty peer state, its own private address
// book, an idle transport, and the engine geometry and birth
// configuration the Options ask for (shard count, admission bound,
// requester cache). Membership and adaptation are enabled by the
// callers after the loops start — they ride the command channel.
func newNode(inst *model.Instance, id model.NodeID, ln net.Listener, seed int64, opts Options) *Node {
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards > maxShards {
		shards = maxShards
	}
	stats := metrics.NewSyncCounter()
	n := &Node{
		id:      id,
		inst:    inst,
		ln:      ln,
		rng:     newNodeRng(seed, id),
		book:    newAddrBook(),
		inbox:   make(chan envelope, 256),
		cmds:    make(chan command, 16),
		done:    make(chan struct{}),
		tr:      newTransport(id, seed, stats),
		stats:   stats,
		latency: &metrics.SyncHistogram{},
		conns:   make(map[net.Conn]struct{}),
		dt:      make(map[catalog.DocID]catalog.CategoryID),
		byCat:   make(map[catalog.CategoryID][]catalog.DocID),
		dcrt:    make(map[catalog.CategoryID]overlay.DCRTEntry),
		nrt:     make(map[model.ClusterID][]model.NodeID),

		gauges:    metrics.NewSyncGauge(),
		querySalt: querySaltFor(id),

		xfers:       make(map[uint64]chan envelope),
		xferTput:    &metrics.SyncHistogram{},
		rtt:         make(map[model.NodeID]float64),
		prevCluster: make(map[catalog.CategoryID]prevClusterRecord),
		demand:      make(map[catalog.DocID]int),
		servedDocs:  make(map[catalog.DocID]int64),
	}
	if opts.Content != nil {
		n.store = content.NewStore(opts.Content.ChunkSize)
		if opts.Content.CacheBytes > 0 {
			n.store.SetCacheBudget(opts.Content.CacheBytes)
			n.cacheAdmit = opts.Content.CacheAdmitHits
			if n.cacheAdmit <= 0 {
				n.cacheAdmit = defaultCacheAdmitHits
			}
		}
	}
	n.book.set(id, ln.Addr().String())
	if opts.WriterIdle != 0 {
		n.tr.writerIdle = opts.WriterIdle
	}
	if opts.MaxInFlight > 0 {
		n.inflightMax.Store(int64(opts.MaxInFlight))
	} else {
		n.inflightMax.Store(DefaultMaxInFlight)
	}
	switch {
	case opts.CacheBytes < 0:
		// Caching disabled at birth; cacheSt stays nil.
	case opts.CacheBytes == 0:
		if cs, err := newCacheState(opts.CachePolicy, DefaultCacheBytes); err == nil {
			n.cacheSt.Store(cs)
		}
	default:
		if cs, err := newCacheState(opts.CachePolicy, opts.CacheBytes); err == nil {
			n.cacheSt.Store(cs)
		}
	}
	n.shards = newShards(n, shards, seed)
	n.tr.onPeerDown = func(peer model.NodeID) {
		select {
		case n.cmds <- func(n *Node) { n.evictPeer(peer) }:
		case <-n.done:
		}
	}
	return n
}

// startLoops launches the node's goroutines: the TCP accept loop, the
// control loop, and one loop per engine shard. The housekeeping sweep
// rides the shared timerwheel — one registration per node fanning
// non-blocking sweep commands to every shard — instead of one ticker
// goroutine per shard.
func (n *Node) startLoops() {
	n.wg.Add(2 + len(n.shards))
	go n.acceptLoop()
	go n.controlLoop()
	for _, s := range n.shards {
		go s.loop()
	}
	n.addTimer(timerwheel.Default().Every(sweepInterval, func(now time.Time) {
		for _, s := range n.shards {
			s.offerSweep(now)
		}
	}))
}

// ID returns the node's id.
func (n *Node) ID() model.NodeID { return n.id }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Served returns how many requests this node has served. Lock-free:
// the pre-shard implementation read the counter through the event loop
// and deadlocked forever when the node closed between enqueuing the
// command and the loop running it (the reply read had no done arm).
func (n *Node) Served() int64 { return n.served.Load() }

// Stats snapshots the node's transport and protocol counters
// (transport_dials, transport_reuses, transport_reconnects,
// transport_retries, transport_send_failures, drop_no_route, …) plus the
// current outbound queue depth under "queue_depth".
func (n *Node) Stats() map[string]int64 {
	s := n.stats.Snapshot()
	s["queue_depth"] = int64(n.tr.queueDepth())
	s["transport_writers_active"] = n.tr.writers()
	s["queries_inflight"] = n.inflight.Load()
	s["engine_shards"] = int64(len(n.shards))
	s["served"] = n.served.Load()
	s["max_inflight"] = n.inflightMax.Load()
	s["transfers_active"] = n.transfersActive.Load()
	if n.store != nil {
		s["content_docs_held"] = int64(n.store.Len())
		s["content_cache_bytes"] = n.store.CacheBytes()
		s["content_cache_docs"] = int64(n.store.CachedLen())
	}
	if cs := n.cacheSt.Load(); cs != nil {
		s["cache_capacity_bytes"] = cs.capBytes
	}
	for k, v := range n.gauges.Snapshot() {
		s[k] = v
	}
	return s
}

// Shards reports how many engine shards this node runs.
func (n *Node) Shards() int { return len(n.shards) }

// QueryLatency exposes the node's query-latency histogram
// (milliseconds). Every finished QueryContext observes it — successes,
// timeouts, and cancellations alike; a timed-out query's wait is
// response time the caller experienced too. Only admission rejections
// and no-route failures (which never wait) stay out.
func (n *Node) QueryLatency() *metrics.SyncHistogram { return n.latency }

// BatchSizes exposes the transport's write-coalescing histogram: how
// many envelopes each flush carried to the socket.
func (n *Node) BatchSizes() *metrics.SyncHistogram { return n.tr.batches }

// Cluster is a set of live peers sharing one deployment.
type Cluster struct {
	Nodes []*Node
	inst  *model.Instance
}

// Stats aggregates every node's counters (queue depths included).
func (c *Cluster) Stats() map[string]int64 {
	total := make(map[string]int64)
	for _, n := range c.Nodes {
		if n == nil {
			continue
		}
		for k, v := range n.Stats() {
			total[k] += v
		}
	}
	return total
}

// NetHooks injects the network layer under a cluster — the seam the
// chaos harness (internal/chaos) plugs into. Either hook may be nil:
// Listen defaults to a plain loopback TCP listener, and a nil Dial
// leaves the transport's default dialer in place.
type NetHooks struct {
	// Listen opens one node's listener. Called once per node before any
	// loop starts, so a fault layer can register the address first.
	Listen func(id model.NodeID, addr string) (net.Listener, error)
	// Dial replaces every node's outbound dialer, keyed by the dialing
	// node — per-link fault injection hangs off this.
	Dial func(from model.NodeID, addr string) (net.Conn, error)
}

// Options configures a node — or every node of a launched cluster — at
// construction. It is the single knob surface for both launch paths
// (Launch for in-process clusters, StartNode for one peer of a
// multi-process deployment), folding in what used to be spread across
// LaunchWithHooks/LaunchWithOptions/StartNodeWithOptions and the
// post-construction setters (SetMaxInFlight, SetCacheCapacity,
// StartMembership, EnableAdaptation), so a harness plan can spawn a
// fully-configured node in one call. The setters remain for runtime
// tuning. The zero value reproduces the historical defaults of each
// path exactly.
type Options struct {
	// Seed drives deterministic randomness: node rngs, transport backoff
	// jitter, and (under Launch) the NRT chord wiring. StartNode derives
	// its seed from Shape.Seed when this is zero; under Launch, zero is
	// simply the seed 0 deployment.
	Seed int64

	// Shards is the engine shard count per node (the -shards flag in
	// cmd/p2pnode); 0 means DefaultShards(), capped at 64.
	Shards int

	// Hooks injects the network layer (fault middleware, alternative
	// listeners). The zero value uses plain TCP.
	Hooks NetHooks

	// MaxInFlight is the admission-control bound on concurrently pending
	// queries; 0 means DefaultMaxInFlight. Runtime-tunable later with
	// SetMaxInFlight.
	MaxInFlight int

	// CacheBytes sizes the requester-side document cache: 0 means
	// DefaultCacheBytes, negative disables caching entirely.
	// Runtime-tunable later with SetCacheCapacity.
	CacheBytes int64

	// CachePolicy picks the cache eviction policy; the zero value is
	// cache.LRU (the historical default).
	CachePolicy cache.Policy

	// Membership configures the SWIM failure detector. nil keeps each
	// path's historical default: off under Launch (opt in later with
	// Cluster.StartMembership), on with membership.DefaultConfig under
	// StartNode. Non-nil turns it on with the given config in both paths.
	Membership *membership.Config

	// Adaptation enables the §6.1 online rebalancing loop with the given
	// config; nil leaves it off (opt in later with EnableAdaptation).
	Adaptation *AdaptConfig

	// WriterIdle is how long a peer link's writer goroutine may sit idle
	// before parking (exiting until the next send respawns it). 0 means
	// the default (45s); negative disables parking so writers persist for
	// the node's lifetime, the pre-parking behavior.
	WriterIdle time.Duration

	// Content enables the content data plane (transfer.go /
	// internal/content): the node holds a chunk store primed with its
	// placed documents, serves manifest and chunk requests, answers
	// Node.Fetch, and ships real document bytes when adaptation moves a
	// category to its cluster. nil leaves the data plane off — metadata
	// only, the historical behavior.
	Content *ContentConfig
}

// DefaultShards is the engine shard count used when Options.Shards is
// zero: GOMAXPROCS, floored at 2 so the cross-shard dispatch paths are
// exercised even on a single-core box, capped at 64 (the query-id
// encoding space).
func DefaultShards() int {
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		p = 2
	}
	if p > maxShards {
		p = maxShards
	}
	return p
}

// Launch starts one TCP peer per instance node on loopback ports, primes
// metadata exactly like the simulated overlay's bootstrap (full DCRT,
// ring-plus-chords NRT per cluster, remote contacts), and returns the
// running cluster. Close it when done. Options carries everything a
// deployment can configure at birth — seed, network hooks, engine
// shards, admission bound, cache, membership, adaptation; the zero
// value matches the historical Launch defaults.
func Launch(inst *model.Instance, assign []model.ClusterID, place *replica.Placement, opts Options) (*Cluster, error) {
	if len(assign) != len(inst.Catalog.Cats) {
		return nil, fmt.Errorf("livenet: assignment covers %d of %d categories",
			len(assign), len(inst.Catalog.Cats))
	}
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	listen := opts.Hooks.Listen
	if listen == nil {
		listen = func(_ model.NodeID, addr string) (net.Listener, error) {
			return net.Listen("tcp", addr)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Cluster{inst: inst}
	book := make(map[model.NodeID]string, len(inst.Nodes))

	for k := range inst.Nodes {
		ln, err := listen(inst.Nodes[k].ID, "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("livenet: listen: %w", err)
		}
		n := newNode(inst, inst.Nodes[k].ID, ln, seed+int64(k), opts)
		if opts.Hooks.Dial != nil {
			from := n.id
			dial := opts.Hooks.Dial
			n.tr.setDial(func(addr string) (net.Conn, error) { return dial(from, addr) })
		}
		book[n.id] = ln.Addr().String()
		c.Nodes = append(c.Nodes, n)
	}

	// Prime storage.
	for k, n := range c.Nodes {
		docs := inst.Nodes[k].Contributed
		if place != nil {
			docs = place.Stored[k]
		}
		for _, d := range docs {
			n.holdDoc(d)
		}
	}
	// Prime DCRTs.
	for cat, cl := range assign {
		if cl == model.NoCluster {
			continue
		}
		for _, n := range c.Nodes {
			n.dcrt[catalog.CategoryID(cat)] = overlay.DCRTEntry{Cluster: cl}
		}
	}
	// Prime NRTs: ring + chords within clusters, remote contacts across.
	for cl := 0; cl < inst.NumClusters; cl++ {
		members := append([]model.NodeID(nil), mem.NodesOf(model.ClusterID(cl))...)
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		link := func(a, b model.NodeID) {
			if a != b {
				c.Nodes[a].addNeighbor(model.ClusterID(cl), b)
				c.Nodes[b].addNeighbor(model.ClusterID(cl), a)
			}
		}
		for i, a := range members {
			link(a, members[(i+1)%len(members)])
			link(a, members[rng.Intn(len(members))])
		}
	}
	for _, n := range c.Nodes {
		for cl := 0; cl < inst.NumClusters; cl++ {
			if len(n.nrt[model.ClusterID(cl)]) > 0 {
				continue
			}
			members := mem.NodesOf(model.ClusterID(cl))
			if len(members) == 0 {
				continue
			}
			for i := 0; i < 3; i++ {
				n.addNeighbor(model.ClusterID(cl), members[rng.Intn(len(members))])
			}
		}
	}

	// Every node aliases ONE shared immutable base book and diverges
	// copy-on-write (book.go): handleHello and handleBook mutate only the
	// node-private overlay inside the owning event loop, so sharing is
	// race-free and Launch memory is O(N) instead of the O(N²) that
	// private full copies cost (≈10⁸ map entries at 10k nodes).
	for _, n := range c.Nodes {
		n.book.setBase(book)
	}

	for _, n := range c.Nodes {
		n.startLoops()
	}
	// Birth-time subsystems ride the command channel, so they come up
	// after the loops. Membership first: adaptation's leader election
	// consults the detector's live view when one is running.
	if opts.Membership != nil {
		c.StartMembership(*opts.Membership)
	}
	if opts.Adaptation != nil {
		c.EnableAdaptation(*opts.Adaptation)
	}
	return c, nil
}

// LaunchWithHooks is Launch with an injectable network layer.
//
// Deprecated: use Launch with Options{Seed: seed, Hooks: hooks}.
func LaunchWithHooks(inst *model.Instance, assign []model.ClusterID, place *replica.Placement, seed int64, hooks NetHooks) (*Cluster, error) {
	return Launch(inst, assign, place, Options{Seed: seed, Hooks: hooks})
}

// LaunchWithOptions is Launch with the seed and hooks passed alongside
// the remaining options.
//
// Deprecated: use Launch and set Options.Seed / Options.Hooks directly.
func LaunchWithOptions(inst *model.Instance, assign []model.ClusterID, place *replica.Placement, seed int64, hooks NetHooks, opts Options) (*Cluster, error) {
	opts.Seed = seed
	opts.Hooks = hooks
	return Launch(inst, assign, place, opts)
}

// newNodeRng derives a node-local random source.
func newNodeRng(seed int64, id model.NodeID) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(id) + 1))
}

// Close shuts every peer down and waits for their loops to exit.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		if n != nil {
			n.shutdown()
		}
	}
	for _, n := range c.Nodes {
		if n != nil {
			n.wg.Wait()
		}
	}
}

// shutdown signals every goroutine belonging to the node: the event and
// accept loops (done / listener), the transport writers, and the inbound
// read loops (closing their connections unblocks Decode). Idempotent.
func (n *Node) shutdown() {
	select {
	case <-n.done:
	default:
		close(n.done)
	}
	n.timersMu.Lock()
	stops := n.stopTimers
	n.stopTimers = nil
	n.timersMu.Unlock()
	for _, stop := range stops {
		stop()
	}
	n.ln.Close()
	n.tr.close()
	n.connsMu.Lock()
	for conn := range n.conns {
		conn.Close()
	}
	n.connsMu.Unlock()
}

func (n *Node) storeDoc(d catalog.DocID) {
	if _, ok := n.dt[d]; ok {
		return
	}
	cat := n.inst.Catalog.Doc(d).Categories[0]
	n.dt[d] = cat
	n.byCat[cat] = append(n.byCat[cat], d)
}

func (n *Node) addNeighbor(cl model.ClusterID, nb model.NodeID) {
	if nb == n.id {
		return
	}
	for _, m := range n.nrt[cl] {
		if m == nb {
			return
		}
	}
	n.nrt[cl] = append(n.nrt[cl], nb)
}

// evictPeer removes a dead peer from every NRT entry (the transport
// reports it after repeated dial failures). Queries stop routing through
// the peer; if it comes back, hello/publish traffic re-adds it.
func (n *Node) evictPeer(peer model.NodeID) {
	evicted := false
	for cl, members := range n.nrt {
		kept := members[:0]
		for _, m := range members {
			if m == peer {
				evicted = true
				continue
			}
			kept = append(kept, m)
		}
		n.nrt[cl] = kept
	}
	if evicted {
		n.stats.Add("nrt_evictions", 1)
	}
}

// acceptLoop registers incoming TCP connections and hands each to a
// read loop that decodes envelopes off the stream until it closes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.connsMu.Lock()
		n.conns[conn] = struct{}{}
		n.connsMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// countingReader counts bytes drained from the socket into the read
// buffer (one Add per fill, not per message).
type countingReader struct {
	r     io.Reader
	stats *metrics.SyncCounter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.stats.Add("wire_bytes_in", int64(n))
	}
	return n, err
}

// readLoop decodes a stream of envelopes off one inbound connection —
// the receive half of the persistent-connection transport. The first
// bytes decide the codec: a wire v2 preamble is consumed and acked and
// the stream decoded with the allocation-free frame reader; anything
// else is a legacy sender and falls through to gob (the peeked bytes
// stay buffered, so no data is lost).
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.connsMu.Lock()
		delete(n.conns, conn)
		n.connsMu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(&countingReader{r: conn, stats: n.stats}, readBufBytes)

	conn.SetReadDeadline(time.Now().Add(readIdleTimeout))
	head, err := br.Peek(wire.PreambleLen)
	if err == nil && wire.IsPreamble(head) && !n.legacyGob.Load() {
		br.Discard(wire.PreambleLen)
		if _, err := conn.Write([]byte{wire.Version}); err != nil {
			return
		}
		n.wireReadLoop(conn, wire.NewReader(br))
		return
	}
	if err != nil && len(head) == 0 {
		return // closed before any payload
	}
	// Legacy (or legacy-simulating) path: gob stream, possibly after a
	// preamble this node pretends not to understand — a real old node's
	// decoder would error out and close, which is what makes the sender
	// fall back; mimic that.
	if n.legacyGob.Load() && wire.IsPreamble(head) {
		return
	}
	n.gobReadLoop(conn, br)
}

func (n *Node) wireReadLoop(conn net.Conn, r *wire.Reader) {
	for {
		conn.SetReadDeadline(time.Now().Add(readIdleTimeout))
		env, err := r.Next()
		if err != nil {
			return // stream closed, peer died, corrupt frame, or idle timeout
		}
		if !n.routeInbound(env) {
			return
		}
	}
}

func (n *Node) gobReadLoop(conn net.Conn, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		conn.SetReadDeadline(time.Now().Add(readIdleTimeout))
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // stream closed, peer died, or idle timeout
		}
		if !n.routeInbound(env) {
			return
		}
	}
}

// routeInbound dispatches one decoded envelope from a connection reader
// to its owner: query and result frames go straight to the shard that
// owns their query id (no global funnel in the hot path); everything
// else — publish, join, membership, adaptation — rides the control
// inbox. Returns false when the node shut down.
func (n *Node) routeInbound(env envelope) bool {
	target := n.inbox
	switch m := env.Msg.(type) {
	case overlay.QueryMsg:
		target = n.shardFor(m.ID).inbox
	case overlay.ResultMsg:
		target = n.shardFor(m.ID).inbox
	case wire.ManifestReq:
		// Content frames are served and demultiplexed inline on the
		// reader goroutine: serving is read-only against the store
		// (its own lock), and chunk I/O through the control loop would
		// head-of-line block membership and adaptation behind bulk work.
		n.serveManifestReq(env.From, m)
		return true
	case wire.ChunkReq:
		n.serveChunkReq(env.From, m)
		return true
	case wire.Manifest:
		n.deliverXfer(m.Xfer, env)
		return true
	case wire.Chunk:
		n.deliverXfer(m.Xfer, env)
		return true
	case wire.Replicate:
		n.handleReplicate(env.From, m)
		return true
	}
	select {
	case target <- env:
		return true
	case <-n.done:
		return false
	}
}

// controlLoop owns the node's low-rate state: membership, adaptation,
// the address book, and the routing tables. It holds routeMu.Lock for
// each event it processes — it is the sole writer of that state, and
// the engine shards read it under RLock. It must never block on a shard
// channel while holding the lock (a shard may be waiting for RLock);
// the only control→shard handoff, stray frames, is non-blocking.
func (n *Node) controlLoop() {
	defer n.wg.Done()
	for {
		select {
		case env := <-n.inbox:
			n.routeMu.Lock()
			n.dispatchControl(env)
			n.routeMu.Unlock()
		case cmd := <-n.cmds:
			n.routeMu.Lock()
			cmd(n)
			n.routeMu.Unlock()
		case <-n.done:
			return
		}
	}
}

func (n *Node) dispatchControl(env envelope) {
	switch m := env.Msg.(type) {
	case overlay.QueryMsg:
		// Query traffic is dispatched to shards by the readers; a stray
		// frame here (injected through the control inbox) is forwarded
		// non-blockingly — control must not wait on a shard channel.
		n.shardFor(m.ID).offer(env)
	case overlay.ResultMsg:
		n.shardFor(m.ID).offer(env)
	case overlay.PublishMsg:
		n.handlePublish(env.From, m)
	case overlay.PublishAckMsg:
		n.handlePublishAck(m)
	case helloMsg:
		n.handleHello(m)
	case bookMsg:
		n.handleBook(m)
	case membership.Ping:
		if n.det != nil {
			n.sendPackets(n.det.OnPing(env.From, m, time.Now()))
			n.drainMembership()
		}
	case membership.Ack:
		if n.det != nil {
			n.sendPackets(n.det.OnAck(env.From, m, time.Now()))
			n.drainMembership()
		}
	case membership.PingReq:
		if n.det != nil {
			n.sendPackets(n.det.OnPingReq(env.From, m, time.Now()))
			n.drainMembership()
		}
	case membership.Leave:
		if n.det != nil {
			n.det.OnLeave(m, time.Now())
			n.drainMembership()
		}
	case wire.LeaderLoad:
		n.handleLeaderLoad(env.From, m)
	case wire.Move:
		n.handleMove(m)
	case overlay.MetadataUpdateMsg:
		n.handleMetaUpdate(m)
	}
}

// send queues one envelope on the persistent transport (fire and forget —
// P2P messages are best-effort, exactly as in the simulator; the
// transport retries and reconnects under the hood). The caller must
// hold routeMu in either mode: it reads the address book. The control
// loop holds the write lock for every event; shards take RLock.
func (n *Node) send(to model.NodeID, msg any) {
	addr, ok := n.book.get(to)
	if !ok {
		n.stats.Add("send_no_addr", 1)
		return
	}
	n.tr.enqueue(to, addr, envelope{From: n.id, Msg: msg})
}

// Sentinel errors shared with the facade — internal/query is the single
// definition point, aliased here so existing livenet callers keep
// compiling and errors.Is matches across packages.
var (
	// ErrTimeout reports a query that did not complete before its
	// deadline.
	ErrTimeout = query.ErrTimeout
	// ErrNoRoute reports a category with no DCRT entry or no reachable
	// members in its serving cluster — the caller gets an explicit error
	// instead of the load being silently dumped on cluster 0.
	ErrNoRoute = query.ErrNoRoute
	// ErrClosed reports an API call on a node that has shut down.
	ErrClosed = query.ErrClosed
	// ErrOverloaded reports a query rejected by admission control.
	ErrOverloaded = query.ErrOverloaded
)

// Publish announces a (locally stored) document to the cluster serving
// its category — the §6.2 protocol over TCP. Publishing a category with
// no DCRT entry fails with ErrNoRoute.
func (n *Node) Publish(d catalog.DocID) error {
	doc := n.inst.Catalog.Doc(d)
	if doc == nil {
		return fmt.Errorf("livenet: unknown document %d", d)
	}
	errc := make(chan error, 1)
	select {
	case n.cmds <- func(n *Node) {
		n.holdDoc(d)
		cat := doc.Categories[0]
		entry, ok := n.dcrt[cat]
		if !ok {
			n.stats.Add("publish_no_route", 1)
			errc <- ErrNoRoute
			return
		}
		for i, nb := range n.nrt[entry.Cluster] {
			if i == 3 {
				break
			}
			n.send(nb, overlay.PublishMsg{Doc: d, Category: cat, Publisher: n.id})
		}
		errc <- nil
	}:
	case <-n.done:
		return ErrClosed
	}
	select {
	case err := <-errc:
		return err
	case <-n.done:
		// The control loop may have run the command just before shutting
		// down; prefer its answer when present.
		select {
		case err := <-errc:
			return err
		default:
			return ErrClosed
		}
	}
}

// handlePublish acknowledges a publish into a cluster this node can
// route; an unroutable category is dropped (and counted) rather than
// fabricating a cluster-0 entry.
func (n *Node) handlePublish(from model.NodeID, m overlay.PublishMsg) {
	entry, known := n.dcrt[m.Category]
	if !known {
		n.stats.Add("drop_no_route", 1)
		return
	}
	accepted := len(n.nrt[entry.Cluster]) > 0
	n.addNeighbor(entry.Cluster, m.Publisher)
	sample := n.nrt[entry.Cluster]
	if len(sample) > 8 {
		sample = sample[:8]
	}
	n.send(from, overlay.PublishAckMsg{
		Doc:      m.Doc,
		Category: m.Category,
		Entry:    entry,
		Accepted: accepted,
		Members:  append([]model.NodeID(nil), sample...),
	})
}

func (n *Node) handlePublishAck(m overlay.PublishAckMsg) {
	// Same validation as applyMoveEntry: a corrupt or hostile ack must
	// not plant an out-of-range category/cluster or an unbeatable move
	// counter in the routing tables.
	if m.Category < 0 || int(m.Category) >= len(n.inst.Catalog.Cats) ||
		m.Entry.Cluster < 0 || int(m.Entry.Cluster) >= n.inst.NumClusters ||
		m.Entry.MoveCounter > n.dcrt[m.Category].MoveCounter+maxMoveCounterJump {
		n.stats.Add("adapt_bad_moves", 1)
		return
	}
	if old, ok := n.dcrt[m.Category]; !ok || m.Entry.MoveCounter > old.MoveCounter {
		n.dcrt[m.Category] = m.Entry
	}
	for _, nb := range m.Members {
		n.addNeighbor(m.Entry.Cluster, nb)
	}
}
