package livenet

import (
	"context"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/cache"
)

// Regression tests for the close races the single-loop engine shipped
// with: accessors and setters that enqueued a command into the buffered
// cmds channel could succeed AFTER the loop exited (the buffer accepts
// 16 entries with nobody draining them) and then block forever on the
// reply channel. Served() and KnownPeers() had no done arm at all; the
// setters had a race window between the enqueue select and the reply
// read. Every one of these tests hangs (and trips the watchdog) on the
// pre-shard engine.

// watchdog fails the test if fn doesn't return within the deadline —
// the failure mode under test is "blocks forever", which otherwise
// stalls the whole package run.
func watchdog(t *testing.T, deadline time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatal("call blocked past the watchdog deadline — close race")
	}
}

// TestCloseRaceAccessors hammers every public accessor and setter from
// many goroutines while the cluster shuts down underneath them, then
// calls each once more after Close returns. No call may block or panic;
// post-close calls must degrade to zero values / ErrClosed.
func TestCloseRaceAccessors(t *testing.T) {
	c, inst := launchShards(t, 77, 4)
	n := c.Nodes[0]
	cat := bigCategory(inst)
	doc := inst.Catalog.Cats[0].Docs[0]

	var wg sync.WaitGroup
	start := make(chan struct{})
	hammer := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				fn()
			}
		}()
	}
	hammer(func() { n.Served() })
	hammer(func() { n.KnownPeers() })
	hammer(func() { n.InFlight() })
	hammer(func() { n.Stats() })
	hammer(func() { n.TableSizes() })
	hammer(func() { n.OverduePending(0) })
	hammer(func() { n.MembershipCounts() })
	hammer(func() { n.SetMaxInFlight(64) })
	hammer(func() { n.SetCacheCapacity(cache.LRU, 8<<20) })
	hammer(func() { n.Publish(doc) })
	hammer(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		n.QueryContext(ctx, cat, 1)
	})

	close(start)
	time.Sleep(10 * time.Millisecond) // let the hammer get going mid-flight
	watchdog(t, 10*time.Second, c.Close)
	watchdog(t, 10*time.Second, wg.Wait)

	// After Close every call must return immediately with a sane value.
	watchdog(t, 5*time.Second, func() {
		if n.KnownPeers() < 0 {
			t.Error("KnownPeers negative after close")
		}
		n.Served()
		n.InFlight()
		n.Stats()
		if ts := n.TableSizes(); ts["pending"] != 0 {
			t.Errorf("pending=%d after close, want 0", ts["pending"])
		}
		n.OverduePending(0)
		n.MembershipCounts()
		n.SetMaxInFlight(1)
		n.SetCacheCapacity(cache.LRU, 0)
		if err := n.Publish(doc); err != ErrClosed {
			t.Errorf("Publish after close: %v, want ErrClosed", err)
		}
		if _, err := n.Query(cat, 1, 100*time.Millisecond); err != ErrClosed {
			t.Errorf("Query after close: %v, want ErrClosed", err)
		}
	})
}

// TestCloseRaceSetters closes a node concurrently with each setter in a
// tight loop, one setter per subtest, so a regression names the exact
// call that hangs. This is the narrow reproducer for the original
// SetMaxInFlight/SetCacheCapacity race: enqueue wins the select, loop
// exits, reply never comes.
func TestCloseRaceSetters(t *testing.T) {
	cases := []struct {
		name string
		call func(n *Node)
	}{
		{"SetMaxInFlight", func(n *Node) { n.SetMaxInFlight(32) }},
		{"SetCacheCapacity", func(n *Node) { n.SetCacheCapacity(cache.LFU, 4<<20) }},
		{"Served", func(n *Node) { n.Served() }},
		{"KnownPeers", func(n *Node) { n.KnownPeers() }},
		{"TableSizes", func(n *Node) { n.TableSizes() }},
		{"MembershipCounts", func(n *Node) { n.MembershipCounts() }},
		{"Leave", func(n *Node) { n.Leave() }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, _ := launchShards(t, 78, 2)
			n := c.Nodes[1]
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						tc.call(n)
					}
				}
			}()
			time.Sleep(5 * time.Millisecond)
			watchdog(t, 10*time.Second, c.Close)
			// The setter must keep returning after close, not park on a
			// reply that will never come.
			watchdog(t, 10*time.Second, func() {
				for i := 0; i < 50; i++ {
					tc.call(n)
				}
				close(stop)
				wg.Wait()
			})
		})
	}
}
