package livenet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/core"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
)

// Tests for the sharded engine: id→shard routing stability, cross-shard
// traffic under concurrency, and the parallel throughput benchmark.

// launchShards is launchSmall with an explicit engine shard count.
func launchShards(t *testing.T, seed int64, shards int) (*Cluster, *model.Instance) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 400
	cfg.Catalog.NumCats = 12
	cfg.NumNodes = 24
	cfg.NumClusters = 4
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := LaunchWithOptions(inst, res.Assignment, place, seed, NetHooks{}, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, inst
}

// TestShardRoutingStable pins the id→shard contract: a minted id carries
// its owning shard's index in the low bits, routes back to that shard on
// the minting node, and routes to ONE deterministic shard on any node
// regardless of that node's own shard count.
func TestShardRoutingStable(t *testing.T) {
	n := &Node{querySalt: querySaltFor(5)}
	n.shards = newShards(n, 8, 99)
	for _, s := range n.shards {
		for i := 0; i < 200; i++ {
			id := s.mintID()
			if got := int(id & shardIDMask); got != s.idx {
				t.Fatalf("minted id %#x carries shard bits %d, want %d", id, got, s.idx)
			}
			if home := n.shardFor(id); home != s {
				t.Fatalf("id %#x minted on shard %d routes home to shard %d", id, s.idx, home.idx)
			}
			// A foreign node running any shard count P routes the id by
			// int(id&mask)%P — check the full supported range stays in
			// bounds and is a pure function of the id.
			for p := 1; p <= maxShards; p *= 2 {
				a := int(id&shardIDMask) % p
				b := int(id&shardIDMask) % p
				if a != b || a < 0 || a >= p {
					t.Fatalf("foreign routing unstable for id %#x at P=%d", id, p)
				}
			}
			s.pending[id] = &pendingQuery{id: id} // force mintID forward
		}
	}
	// Two shards of one node never mint the same id (disjoint low bits),
	// and one shard never repeats (pending-collision re-roll + sequence).
	seen := make(map[uint64]struct{})
	for _, s := range n.shards {
		for id := range s.pending {
			if _, dup := seen[id]; dup {
				t.Fatalf("query id %#x minted twice", id)
			}
			seen[id] = struct{}{}
		}
	}
}

// TestCrossShardConcurrentQueries is the 120-concurrent-query race test
// run with 8 engine shards: queries must spread across shards (not
// collapse onto one loop), every caller completes exactly once, and the
// accounting stays conserved — same guarantees as the single-loop test,
// now with cross-shard dispatch in the hot path.
func TestCrossShardConcurrentQueries(t *testing.T) {
	c, inst := launchShards(t, 41, 8)
	n := c.Nodes[0]
	if got := n.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	cat := bigCategory(inst)
	const concurrent = 120
	want := impossibleWant(len(inst.Catalog.Docs))

	var wg sync.WaitGroup
	var mu sync.Mutex
	completions, timeouts, oks := 0, 0, 0
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			// A third of the load is satisfiable so success and timeout
			// paths interleave across shards.
			w := want
			if i%3 == 0 {
				w = 1
			}
			out, err := n.QueryContext(ctx, cat, w)
			mu.Lock()
			defer mu.Unlock()
			completions++
			switch {
			case err == nil:
				oks++
			case errors.Is(err, ErrTimeout):
				timeouts++
				if out.Done {
					t.Error("timed-out query reported done")
				}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	waitInFlight(t, n, 60, 2*time.Second)
	// The round-robin pick must actually spread pending state: with ≥60
	// in flight over 8 shards, several shards must own entries.
	busy := 0
	for _, s := range n.shards {
		if tbl, ok := s.askShard(0); ok && tbl.pending > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("pending queries concentrated on %d shard(s), want spread over several", busy)
	}
	wg.Wait()
	if completions != concurrent {
		t.Errorf("%d of %d queries completed", completions, concurrent)
	}
	if timeouts == 0 || oks == 0 {
		t.Errorf("mixed load produced oks=%d timeouts=%d, want both non-zero", oks, timeouts)
	}
	end := time.Now().Add(time.Second)
	for n.InFlight() != 0 && time.Now().Before(end) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after all queries returned, want 0", got)
	}
	s := n.Stats()
	if total := s["queries_ok"] + s["query_timeouts"] + s["query_cancelled"]; total != concurrent {
		t.Errorf("queries_ok+query_timeouts+query_cancelled = %d, want %d", total, concurrent)
	}
}

// BenchmarkEngineParallel measures one node's query throughput under
// parallel callers at 1, 2, and GOMAXPROCS engine shards (the cache is
// off so every query runs the full engine + transport path). On a
// multi-core runner the GOMAXPROCS case should scale well past the
// single-shard case; on one core the three collapse together.
func BenchmarkEngineParallel(b *testing.B) {
	counts := []int{1, 2}
	if p := DefaultShards(); p > 2 {
		counts = append(counts, p)
	}
	for _, shards := range counts {
		b.Run(benchName(shards), func(b *testing.B) {
			cfg := model.DefaultConfig()
			cfg.Catalog.NumDocs = 400
			cfg.Catalog.NumCats = 12
			cfg.NumNodes = 24
			cfg.NumClusters = 4
			cfg.Seed = 51
			inst, err := model.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			c, err := LaunchWithOptions(inst, assignAll(inst), nil, 51, NetHooks{}, Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			n := c.Nodes[0]
			if err := n.SetCacheCapacity(cache.LRU, 0); err != nil {
				b.Fatal(err)
			}
			cat := bigCategory(inst)
			// Warm the streams so the benchmark measures the engine, not
			// connection setup.
			if _, err := n.Query(cat, 1, 5*time.Second); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := n.Query(cat, 1, 5*time.Second); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if el := time.Since(start).Seconds(); el > 0 {
				b.ReportMetric(float64(b.N)/el, "queries/sec")
			}
		})
	}
}

func benchName(shards int) string {
	switch shards {
	case 1:
		return "shards=1"
	case 2:
		return "shards=2"
	default:
		return "shards=gomaxprocs"
	}
}
