package livenet

import (
	"bufio"
	"encoding/gob"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/metrics"
	"p2pshare/internal/overlay"
	"p2pshare/internal/wire"
)

// TestWireCodecEndToEnd checks that two v2 nodes talk the binary codec:
// traffic flows, bytes are counted on both ends, and the gob fallback is
// never taken.
func TestWireCodecEndToEnd(t *testing.T) {
	c, inst := launchSmall(t, 31)
	cat := bigCategory(inst)
	for i := 0; i < 10; i++ {
		if _, err := c.Nodes[i%len(c.Nodes)].Query(cat, 3, 5*time.Second); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s["codec_fallback"] != 0 {
		t.Errorf("v2-only cluster took the gob fallback %d times", s["codec_fallback"])
	}
	if s["wire_bytes_out"] == 0 || s["wire_bytes_in"] == 0 {
		t.Errorf("wire byte counters not moving: out=%d in=%d", s["wire_bytes_out"], s["wire_bytes_in"])
	}
	t.Logf("wire_bytes_out=%d wire_bytes_in=%d sends=%d", s["wire_bytes_out"], s["wire_bytes_in"], s["transport_sends"])
}

// TestMixedVersionInterop downgrades one serving-cluster member to a
// legacy gob-only node (it never acks the v2 preamble and sends without
// one) and checks that query and publish traffic still completes across
// the version boundary, with the fallback counted.
func TestMixedVersionInterop(t *testing.T) {
	c, inst := launchSmall(t, 32)
	cat := bigCategory(inst)

	// Find a member of the category's serving cluster — guaranteed to
	// receive query floods from v2 peers.
	var legacy *Node
	runCmd(t, c.Nodes[0], func(n *Node) {
		cl := n.dcrt[cat].Cluster
		if members := n.nrt[cl]; len(members) > 0 {
			legacy = c.Nodes[members[0]]
		}
	})
	if legacy == nil {
		t.Fatal("no serving-cluster member found")
	}
	legacy.legacyGob.Store(true)
	legacy.tr.forceGob.Store(true)

	// Disable the requester cache so queries keep hitting the network;
	// entry targets are picked at random, so run until one of them lands
	// on the legacy node (12 queries minimum keeps the traffic volume of
	// the original scenario).
	for _, n := range c.Nodes {
		if err := n.SetCacheCapacity(cache.LRU, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		origin := c.Nodes[i%len(c.Nodes)]
		out, err := origin.Query(cat, 3, 5*time.Second)
		if err != nil {
			t.Fatalf("query %d from node %d: %v", i, origin.ID(), err)
		}
		if !out.Done {
			t.Fatalf("query %d incomplete: %+v", i, out)
		}
		if i >= 11 && legacy.Served() > 0 {
			break
		}
	}
	// The legacy node itself queries (outbound gob) and publishes.
	if _, err := legacy.Query(cat, 2, 5*time.Second); err != nil {
		t.Fatalf("legacy node query: %v", err)
	}
	var doc catalog.DocID = -1
	for _, cd := range inst.Catalog.Cats[cat].Docs {
		doc = cd
		break
	}
	if doc >= 0 {
		if err := legacy.Publish(doc); err != nil {
			t.Fatalf("legacy node publish: %v", err)
		}
	}

	s := c.Stats()
	if s["codec_fallback"] == 0 {
		t.Errorf("no codec fallback counted with a legacy peer in the serving cluster: %v", s)
	}
	if legacy.Served() == 0 {
		t.Error("legacy node served no queries — fallback traffic never reached it")
	}
	t.Logf("mixed-version: codec_fallback=%d legacy_served=%d sends=%d",
		s["codec_fallback"], legacy.Served(), s["transport_sends"])
}

// TestTransportBatchingCoalesces backs the queue up behind a slow dial
// and checks that the writer drains it in multi-envelope batches.
func TestTransportBatchingCoalesces(t *testing.T) {
	received := make(chan struct{}, 1024)
	ln := startSink(t, received, nil)

	stats := metrics.NewSyncCounter()
	tr := newTransport(1, 5, stats)
	defer tr.close()
	// Delay only the first dial so the whole burst is queued before the
	// stream opens.
	var dials atomic.Int64
	tr.setDial(func(addr string) (net.Conn, error) {
		if dials.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond)
		}
		return net.DialTimeout("tcp", addr, dialTimeout)
	})

	const burst = 50
	for i := 0; i < burst; i++ {
		tr.enqueue(2, ln.Addr().String(), envelope{From: 1, Msg: overlay.QueryMsg{ID: uint64(i)}})
	}
	for i := 0; i < burst; i++ {
		select {
		case <-received:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d envelopes arrived: %v", i, burst, stats.Snapshot())
		}
	}
	if max := tr.batches.Max(); max < 2 {
		t.Errorf("largest batch = %.0f envelopes, want coalescing (>1); batches: %s", max, tr.batches.Summary())
	}
	t.Logf("batch sizes over %d envelopes: %s", burst, tr.batches.Summary())
}

// TestNegotiateTimeoutNotSticky stalls the FIRST handshake past the ack
// deadline — a v2 peer hiccuping between accept and ack — then serves
// the resulting gob-fallback stream and kills it. The sender must
// re-probe v2 on the reconnect: a lone transient timeout may downgrade
// one stream, but never pin the peer to gob for the process lifetime.
func TestNegotiateTimeoutNotSticky(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	codec := make(chan string, 256)
	var wg sync.WaitGroup
	go func() {
		for connNo := 1; ; connNo++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn, connNo int) {
				defer wg.Done()
				defer conn.Close()
				br := bufio.NewReaderSize(conn, readBufBytes)
				head, err := br.Peek(wire.PreambleLen)
				if connNo == 1 {
					// Swallow the preamble, never ack, and hold the
					// stream open until the sender gives up — the
					// blocking (not closing) non-acker.
					io.Copy(io.Discard, br)
					return
				}
				if err == nil && wire.IsPreamble(head) {
					br.Discard(wire.PreambleLen)
					if _, err := conn.Write([]byte{wire.Version}); err != nil {
						return
					}
					r := wire.NewReader(br)
					for {
						if _, err := r.Next(); err != nil {
							return
						}
						codec <- "wire"
					}
				}
				// Gob fallback stream: take one envelope, then let the
				// deferred close kill it so the sender reconnects.
				var env envelope
				if err := gob.NewDecoder(br).Decode(&env); err != nil {
					return
				}
				codec <- "gob"
			}(conn, connNo)
		}
	}()
	t.Cleanup(func() { ln.Close(); wg.Wait() })

	stats := metrics.NewSyncCounter()
	tr := newTransport(1, 11, stats)
	defer tr.close()

	env := envelope{From: 1, Msg: overlay.QueryMsg{ID: 1}}
	tr.enqueue(2, ln.Addr().String(), env)
	select {
	case c := <-codec:
		if c != "gob" {
			t.Fatalf("first envelope arrived via %q, want the per-stream gob fallback", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("first envelope never arrived: %v", stats.Snapshot())
	}

	// The fallback stream is dead; keep sending until traffic flows
	// again. The reconnect must have re-probed (and won) v2.
	deadline := time.Now().Add(10 * time.Second)
	gotWire := false
	for !gotWire && time.Now().Before(deadline) {
		tr.enqueue(2, ln.Addr().String(), env)
		select {
		case c := <-codec:
			gotWire = c == "wire"
		case <-time.After(200 * time.Millisecond):
		}
	}
	if !gotWire {
		t.Fatalf("traffic never returned to the v2 codec after a transient stall: %v", stats.Snapshot())
	}
	if p := tr.peer(2, ln.Addr().String()); p.gobOnly.Load() {
		t.Error("one ack timeout marked the peer gob-only (sticky downgrade)")
	}
	s := stats.Snapshot()
	if s["transport_negotiate_timeouts"] == 0 {
		t.Errorf("negotiate timeout not counted: %v", s)
	}
	if s["codec_fallback"] == 0 {
		t.Errorf("per-stream fallback not counted: %v", s)
	}
}

// startSink runs a v2-capable receiver: it acks the wire preamble and
// decodes frames, or falls through to gob for legacy senders. Every
// decoded envelope signals received; inbound bytes accumulate in nbytes
// when non-nil.
func startSink(t testing.TB, received chan struct{}, nbytes *atomic.Int64) net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				var r io.Reader = conn
				if nbytes != nil {
					r = &tallyReader{r: conn, n: nbytes}
				}
				br := bufio.NewReaderSize(r, readBufBytes)
				head, err := br.Peek(wire.PreambleLen)
				if err == nil && wire.IsPreamble(head) {
					br.Discard(wire.PreambleLen)
					if _, err := conn.Write([]byte{wire.Version}); err != nil {
						return
					}
					wr := wire.NewReader(br)
					for {
						if _, err := wr.Next(); err != nil {
							return
						}
						received <- struct{}{}
					}
				}
				dec := gob.NewDecoder(br)
				for {
					var env envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					received <- struct{}{}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	return ln
}

type tallyReader struct {
	r io.Reader
	n *atomic.Int64
}

func (tr *tallyReader) Read(p []byte) (int, error) {
	n, err := tr.r.Read(p)
	tr.n.Add(int64(n))
	return n, err
}

// BenchmarkTransportThroughput measures sustained one-way envelope
// throughput (msgs/sec, MB/s) through the full transport stack against a
// live TCP sink, under three configurations:
//
//   - gob-per-msg: gob codec, one flush per envelope — the transport's
//     behavior before the v2 wire work (the seed baseline).
//   - gob-batched: gob codec with write coalescing.
//   - wire-batched: the v2 default (binary codec + coalescing).
func BenchmarkTransportThroughput(b *testing.B) {
	env := envelope{From: 1, Msg: overlay.ResultMsg{
		ID: 7, Docs: []catalog.DocID{3, 17, 256, 4095, 70000, 9, 12, 31}, Hops: 3, From: 2,
	}}
	run := func(b *testing.B, forceGob, flushEach bool) {
		received := make(chan struct{}, 4096)
		var nbytes atomic.Int64
		ln := startSink(b, received, &nbytes)

		stats := metrics.NewSyncCounter()
		tr := newTransport(1, 42, stats)
		defer tr.close()
		tr.forceGob.Store(forceGob)
		tr.flushEach.Store(flushEach)

		// Credit-based flow control keeps the producer inside the bounded
		// send queue (overflow would silently drop): each enqueue spends a
		// credit, each envelope decoded by the sink returns one.
		var got atomic.Int64
		credits := make(chan struct{}, sendQueueCap-64)
		for i := 0; i < cap(credits); i++ {
			credits <- struct{}{}
		}
		drained := make(chan struct{})
		go func() {
			for range received {
				if got.Add(1) == int64(b.N) {
					close(drained)
					return
				}
				credits <- struct{}{}
			}
		}()

		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			<-credits
			tr.enqueue(2, ln.Addr().String(), env)
		}
		select {
		case <-drained:
		case <-time.After(30 * time.Second):
			b.Fatalf("sink received %d of %d envelopes: %v", got.Load(), b.N, stats.Snapshot())
		}
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "msgs/sec")
		b.ReportMetric(float64(nbytes.Load())/(1<<20)/elapsed.Seconds(), "MB/s")
		if mean := tr.batches.Mean(); mean > 0 {
			b.ReportMetric(mean, "msgs/batch")
		}
	}
	for _, cfg := range []struct {
		name                string
		forceGob, flushEach bool
	}{
		{"gob-per-msg", true, true},
		{"gob-batched", true, false},
		{"wire-batched", false, false},
	} {
		b.Run(cfg.name, func(b *testing.B) { run(b, cfg.forceGob, cfg.flushEach) })
	}
}
