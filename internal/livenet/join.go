package livenet

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/membership"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
	"p2pshare/internal/wire"
)

// Dynamic membership over TCP: a standalone peer joins an existing live
// deployment knowing only one member's address. The content model is NOT
// shipped over the wire — every participant reconstructs the identical
// instance (catalog, balancing, placement) from the shared seed and shape
// parameters, exactly as deterministic generation guarantees; the
// handshake only exchanges the one thing that differs per deployment: the
// address book.

func init() {
	// RegisterName, not Register: before wire v2, helloMsg and bookMsg
	// were structs local to this package, so their gob wire names are
	// "p2pshare/internal/livenet.helloMsg"/".bookMsg". Gob matches
	// interface values by registered name, so aliasing the types to the
	// wire package must not change the names — a pre-v2 peer has to keep
	// decoding our hellos/books (and we theirs) for the join handshake to
	// work across versions (pinned by the tests in gob_interop_test.go).
	gob.RegisterName("p2pshare/internal/livenet.helloMsg", helloMsg{})
	gob.RegisterName("p2pshare/internal/livenet.bookMsg", bookMsg{})
	// Generation-3 messages (membership + adaptation). Names are pinned
	// for the same reason: two generation-3 binaries that negotiated down
	// to gob (e.g. across a future version bump) must keep agreeing on
	// these, independent of any package reshuffling.
	gob.RegisterName("p2pshare/internal/membership.Ping", membership.Ping{})
	gob.RegisterName("p2pshare/internal/membership.Ack", membership.Ack{})
	gob.RegisterName("p2pshare/internal/membership.PingReq", membership.PingReq{})
	gob.RegisterName("p2pshare/internal/membership.Leave", membership.Leave{})
	gob.RegisterName("p2pshare/internal/wire.LeaderLoad", wire.LeaderLoad{})
	gob.RegisterName("p2pshare/internal/wire.Move", wire.Move{})
	gob.RegisterName("p2pshare/internal/overlay.MetadataUpdateMsg", overlay.MetadataUpdateMsg{})
	// Generation-4 messages (content data plane), pinned the same way.
	gob.RegisterName("p2pshare/internal/wire.ManifestReq", wire.ManifestReq{})
	gob.RegisterName("p2pshare/internal/wire.Manifest", wire.Manifest{})
	gob.RegisterName("p2pshare/internal/wire.ChunkReq", wire.ChunkReq{})
	gob.RegisterName("p2pshare/internal/wire.Chunk", wire.Chunk{})
}

// helloMsg announces a (re)joining node and its listen address; bookMsg
// shares the sender's address book. Both are the wire package's types so
// either codec can carry them — announce() itself always speaks gob (it
// is a one-shot dial that must work against any peer version), which
// doubles as standing coverage of the inbound fallback path.
type (
	helloMsg = wire.Hello
	bookMsg  = wire.Book
)

// Shape are the deterministic-generation parameters every process of one
// deployment must share (put them on the command line of each p2pnode).
type Shape struct {
	Documents  int
	Categories int
	Nodes      int
	Clusters   int
	Seed       int64
	// DocBytes is the size of every document in bytes; 0 keeps the
	// model default (the paper's 4 MB MP3 example). The content data
	// plane sizes its synthetic bytes — and therefore every transfer —
	// from this, so all processes of a deployment must agree on it.
	DocBytes int64
}

// Build reconstructs the deployment's model: instance, MaxFair
// assignment, and replica placement — identical in every process that
// uses the same Shape.
func (sh Shape) Build() (*model.Instance, []model.ClusterID, *replica.Placement, error) {
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = sh.Documents
	cfg.Catalog.NumCats = sh.Categories
	cfg.NumNodes = sh.Nodes
	cfg.NumClusters = sh.Clusters
	cfg.Seed = sh.Seed
	if sh.DocBytes > 0 {
		cfg.Catalog.DocSize = sh.DocBytes
	}
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, nil, nil, err
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	return inst, res.Assignment, place, nil
}

// StartNode boots ONE live peer of a deployment (for the multi-process
// p2pnode binary): it reconstructs the model from the shape, takes the
// role of node `id` (storing what the placement assigned to it), listens
// on listenAddr, and — when bootstrapAddr is non-empty — announces itself
// to the existing deployment and fetches the address book. Options is
// the same birth-time knob surface Launch takes (shards, hooks,
// admission, cache, membership, adaptation); its zero value matches the
// historical StartNode defaults, with one path difference: membership is
// ON by default here (standalone deployments face real churn), and
// Options.Seed zero means Shape.Seed — the deployment seed — so every
// process derives identical node-local randomness without repeating it.
func StartNode(sh Shape, id model.NodeID, listenAddr, bootstrapAddr string, opts Options) (*Node, error) {
	inst, assign, place, err := sh.Build()
	if err != nil {
		return nil, err
	}
	if int(id) < 0 || int(id) >= len(inst.Nodes) {
		return nil, fmt.Errorf("livenet: node id %d outside shape (0..%d)", id, len(inst.Nodes)-1)
	}
	listen := opts.Hooks.Listen
	if listen == nil {
		listen = func(_ model.NodeID, addr string) (net.Listener, error) {
			return net.Listen("tcp", addr)
		}
	}
	ln, err := listen(id, listenAddr)
	if err != nil {
		return nil, fmt.Errorf("livenet: listen %s: %w", listenAddr, err)
	}
	seed := sh.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	n := newNode(inst, id, ln, seed, opts)
	if opts.Hooks.Dial != nil {
		dial := opts.Hooks.Dial
		n.tr.setDial(func(addr string) (net.Conn, error) { return dial(id, addr) })
	}
	for _, d := range place.Stored[id] {
		n.holdDoc(d)
	}
	for cat, cl := range assign {
		if cl != model.NoCluster {
			n.dcrt[catalog.CategoryID(cat)] = overlay.DCRTEntry{Cluster: cl}
		}
	}
	// NRT: this process cannot know which peers are up; it relies on the
	// address book to find them. Route every cluster through the book:
	// members are discovered as hellos arrive. Prime with the static
	// membership so cluster routing knows WHO belongs WHERE; liveness is
	// the book's job.
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		ln.Close()
		return nil, err
	}
	for c := 0; c < inst.NumClusters; c++ {
		for _, m := range mem.NodesOf(model.ClusterID(c)) {
			if m != id {
				n.addNeighbor(model.ClusterID(c), m)
			}
		}
	}
	n.startLoops()

	// Standalone deployments face real churn, so the failure detector is
	// on by default (Launch-style in-process clusters opt in with
	// Cluster.StartMembership or Options.Membership); a non-nil
	// Options.Membership only overrides its timing.
	mcfg := membership.Config{}
	if opts.Membership != nil {
		mcfg = *opts.Membership
	}
	n.StartMembership(mcfg)
	if opts.Adaptation != nil {
		n.EnableAdaptation(*opts.Adaptation)
	}

	if bootstrapAddr != "" {
		if err := n.announce(bootstrapAddr); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// StartNodeWithOptions is StartNode with the options last.
//
// Deprecated: it is now identical to StartNode, which takes the same
// Options struct; call StartNode directly.
func StartNodeWithOptions(sh Shape, id model.NodeID, listenAddr, bootstrapAddr string, opts Options) (*Node, error) {
	return StartNode(sh, id, listenAddr, bootstrapAddr, opts)
}

// Close shuts down a standalone node and waits for all of its goroutines
// (event loop, accept loop, transport writers, inbound read loops).
func (n *Node) Close() {
	n.shutdown()
	n.wg.Wait()
}

// announce sends a hello to the bootstrap address directly (it is not in
// the book yet) and waits for the book to arrive. The initial dial is
// retried under the transport's capped backoff+jitter — a bootstrap
// that is briefly down at startup (restarting, racing this process's
// launch) must not permanently fail the join. The hello is also re-sent
// a few times while waiting for the book: the bootstrap's reply can be
// lost into a stale stream it still holds toward our pre-restart
// incarnation, and only its next send (after the reconnect) gets
// through.
func (n *Node) announce(bootstrapAddr string) error {
	hello := func() error {
		conn, err := net.DialTimeout("tcp", bootstrapAddr, 3*time.Second)
		if err != nil {
			return fmt.Errorf("livenet: bootstrap %s: %w", bootstrapAddr, err)
		}
		defer conn.Close()
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		env := envelope{From: n.id, Msg: helloMsg{ID: n.id, Addr: n.Addr()}}
		if err := gob.NewEncoder(conn).Encode(env); err != nil {
			return fmt.Errorf("livenet: announce: %w", err)
		}
		return nil
	}
	// A local rng: n.rng is owned by the event loop, which is already
	// running.
	rng := rand.New(rand.NewSource(int64(n.id)*2654435761 + 17))
	const dialAttempts = 6
	var err error
	for attempt := 1; ; attempt++ {
		if err = hello(); err == nil {
			break
		}
		if attempt >= dialAttempts {
			return err
		}
		n.stats.Add("announce_retries", 1)
		if !n.tr.backoff(rng, attempt) {
			return ErrClosed // node shut down while waiting
		}
	}
	// The book arrives asynchronously; poll briefly so the caller can
	// query immediately after joining, re-announcing between polls.
	for attempt := 0; attempt < 5; attempt++ {
		deadline := time.Now().Add(600 * time.Millisecond)
		for time.Now().Before(deadline) {
			if n.KnownPeers() > 1 {
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		if attempt < 4 {
			if err := hello(); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("livenet: no address book received from %s", bootstrapAddr)
}

// KnownPeers reports how many peers (including itself) the node can
// address. Reads the book directly under the routing read lock — the
// pre-shard version rode the event loop and then blocked on `<-ch` with
// no shutdown arm, so KnownPeers racing Close hung forever (pinned by
// TestCloseRaceAccessors).
func (n *Node) KnownPeers() int {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	return n.book.len()
}

// Peers snapshots the node's address book (id → listen address),
// including itself. Fault-injection layers use it to attribute links by
// node id; treat the copy as read-only truth at the time of the call.
func (n *Node) Peers() map[model.NodeID]string {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	return n.book.snapshot()
}

// handleHello merges the newcomer into the book, replies with the full
// book, and forwards the hello once to every peer this node knew before
// (so the whole deployment learns the address without a broadcast storm).
// A duplicate announcement — a peer restarting on its old address —
// still gets the book reply (the restarted process lost its copy); only
// the forwarding is suppressed.
func (n *Node) handleHello(m helloMsg) {
	known, _ := n.book.get(m.ID)
	duplicate := known == m.Addr
	prior := make([]model.NodeID, 0, n.book.len())
	n.book.forEach(func(id model.NodeID, _ string) bool {
		if id != n.id && id != m.ID {
			prior = append(prior, id)
		}
		return true
	})
	n.book.set(m.ID, m.Addr)
	if n.det != nil {
		// A hello is firsthand liveness evidence: it resurrects even a
		// tombstoned peer (the node really is back), with an incarnation
		// past the tombstone so the comeback out-gossips the death.
		n.det.Rejoin(m.ID, m.Addr, time.Now())
		n.drainMembership()
	}
	reply := bookMsg{Book: n.book.snapshot()}
	if n.det != nil {
		reply.Dead = n.det.Tombstones()
	}
	n.send(m.ID, reply)
	if duplicate {
		return
	}
	for _, id := range prior {
		n.send(id, m)
	}
}

// handleBook merges a received address book. Merging is secondhand
// evidence: tombstones ride along (wire.Book.Dead) and are applied
// first, and entries for peers this node's membership view has
// confirmed dead are dropped rather than resurrected — only firsthand
// contact (a hello, a ping) brings a tombstoned peer back.
func (n *Node) handleBook(m bookMsg) {
	now := time.Now()
	if n.det != nil {
		for id, inc := range m.Dead {
			// A tombstone about this node itself is refuted inside the
			// detector (incarnation bump + alive rumor).
			n.det.ApplyTombstone(id, inc, now)
		}
	}
	for id, addr := range m.Book {
		if id == n.id {
			continue
		}
		if n.det != nil {
			n.det.Observe(id, addr, now)
			if !n.det.IsLive(id) {
				continue // confirmed dead; do not resurrect the entry
			}
		}
		n.book.set(id, addr)
	}
	if n.det != nil {
		n.drainMembership()
	}
}
