package livenet

// The sharded query engine. Node protocol state is partitioned across P
// engine shards (ROADMAP item 2: one event loop per node serializes on
// one core; paper-scale live clusters need a node to use the whole
// machine). Each shard owns a slice of the pending-query table and of
// the flood-dedup seen set, runs its own loop and housekeeping sweep,
// and is fed directly by the per-connection reader goroutines — no
// global funnel in the query hot path.
//
// Ownership map:
//
//	shard s (of P)    pending queries and seen entries whose query id
//	                  satisfies int(id&shardIDMask)%P == s; the shard's
//	                  rng, query-id sequence, and per-category hit
//	                  counters (drained by adaptation).
//	control loop      membership, adaptation, address book, DT/byCat,
//	                  DCRT, NRT — everything low-rate; see livenet.go.
//	caller goroutine  admission (atomic CAS), requester-cache lookup,
//	                  and the route snapshot for a new query.
//
// Frame dispatch: a decoded QueryMsg/ResultMsg goes straight to the
// shard owning its query id; every other message type goes to the
// control loop. A query id is minted with its owning shard's index in
// the low shardIDBits bits, so any node — even one running a different
// shard count — routes the id to one deterministic shard, and results
// for a query come home to the shard that registered it.
//
// Locking: shards read the control-owned routing state (book, DCRT,
// NRT, byCat) under routeMu.RLock; the control loop holds routeMu.Lock
// for every event it processes and is the sole writer. send() assumes
// routeMu is held in either mode. The control loop must never block on
// a shard channel while holding the lock (shards may be waiting for an
// RLock); control→shard nudges are non-blocking.
//
// Shutdown: close(done) fans out to every loop; no channel is closed
// besides done, and every blocking channel operation in the API layer
// carries a done arm plus a final non-blocking read so work the loops
// completed just before exiting is still preferred over ErrClosed.

import (
	"math/rand"
	"sync"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

const (
	// shardIDBits low bits of every query id carry the minting shard's
	// index; shardIDMask extracts them. Foreign nodes with a different
	// shard count P route by int(id&shardIDMask)%P, which is stable for
	// any P ≤ maxShards.
	shardIDBits = 6
	shardIDMask = (1 << shardIDBits) - 1
	// maxShards bounds a node's shard count to the id-encoding space.
	maxShards = 1 << shardIDBits
	// shardInboxDepth buffers decoded frames per shard between the
	// connection readers and the shard loop.
	shardInboxDepth = 128
)

// shardCmd is a request executed inside one shard's loop.
type shardCmd func(*engineShard)

// engineShard owns one partition of a node's query state.
type engineShard struct {
	n   *Node
	idx int

	inbox chan envelope
	cmds  chan shardCmd

	// Loop-owned state.
	pending   map[uint64]*pendingQuery
	seenCur   map[uint64]struct{}
	seenPrev  map[uint64]struct{}
	nextQuery uint64
	rng       *rand.Rand

	// hits counts per-category entry requests into this shard (the
	// §6.1.2 monitoring counter). The shard loop increments it, the
	// control loop's adaptation report drains it; hence the mutex.
	hits   map[catalog.CategoryID]int64
	hitsMu sync.Mutex
}

// newShards builds the node's shard set.
func newShards(n *Node, count int, seed int64) []*engineShard {
	shards := make([]*engineShard, count)
	for i := range shards {
		shards[i] = &engineShard{
			n:        n,
			idx:      i,
			inbox:    make(chan envelope, shardInboxDepth),
			cmds:     make(chan shardCmd, 16),
			pending:  make(map[uint64]*pendingQuery),
			seenCur:  make(map[uint64]struct{}),
			seenPrev: make(map[uint64]struct{}),
			rng:      rand.New(rand.NewSource(seed + int64(n.id)*int64(count) + int64(i) + 7)),
			hits:     make(map[catalog.CategoryID]int64),
		}
	}
	return shards
}

// shardFor routes a query id to its owning shard.
func (n *Node) shardFor(id uint64) *engineShard {
	return n.shards[int(id&shardIDMask)%len(n.shards)]
}

// pickShard round-robins new queries across shards. Selection is NOT by
// category: a hot category would pin one shard on every node and
// re-serialize exactly the load sharding exists to spread.
func (n *Node) pickShard() *engineShard {
	return n.shards[n.nextShard.Add(1)%uint64(len(n.shards))]
}

// loop is one shard's event loop: decoded frames and API commands. The
// housekeeping sweep arrives as a command from the node's timerwheel
// registration (offerSweep) — shards no longer own ticker goroutines.
func (s *engineShard) loop() {
	defer s.n.wg.Done()
	for {
		select {
		case env := <-s.inbox:
			s.dispatch(env)
		case cmd := <-s.cmds:
			cmd(s)
		case <-s.n.done:
			return
		}
	}
}

// offerSweep hands the shard a sweep tick without blocking (timerwheel
// callbacks must never block; a shard too busy to take the tick gets the
// next one ≤ sweepInterval later, which the sweep's semantics tolerate).
func (s *engineShard) offerSweep(now time.Time) {
	select {
	case s.cmds <- func(s *engineShard) { s.sweep(now) }:
	default:
		s.n.stats.Add("shard_sweep_skips", 1)
	}
}

// offer is the non-blocking control→shard handoff (stray frames that
// arrived on the control inbox). Dropping is safe — both message kinds
// are best-effort — and counted.
func (s *engineShard) offer(env envelope) {
	select {
	case s.inbox <- env:
	default:
		s.n.stats.Add("shard_inbox_drops", 1)
	}
}

func (s *engineShard) dispatch(env envelope) {
	switch m := env.Msg.(type) {
	case overlay.QueryMsg:
		s.handleQuery(m)
	case overlay.ResultMsg:
		s.handleResult(m)
	}
}

// seenBefore/markSeen dedup flooded query ids within the owning shard —
// an id always routes to the same shard of a node, so per-shard dedup
// is exact, not probabilistic.
func (s *engineShard) seenBefore(id uint64) bool {
	if _, ok := s.seenCur[id]; ok {
		return true
	}
	_, ok := s.seenPrev[id]
	return ok
}

func (s *engineShard) markSeen(id uint64) { s.seenCur[id] = struct{}{} }

// addHit bumps the §6.1.2 per-category request counter.
func (s *engineShard) addHit(cat catalog.CategoryID) {
	s.hitsMu.Lock()
	s.hits[cat]++
	s.hitsMu.Unlock()
}

// drainHits folds every shard's hit counters into one map and resets
// them — one epoch's measurement for the adaptation report.
func (n *Node) drainHits() map[catalog.CategoryID]int64 {
	out := make(map[catalog.CategoryID]int64)
	for _, s := range n.shards {
		s.hitsMu.Lock()
		if len(s.hits) > 0 {
			for c, h := range s.hits {
				out[c] += h
			}
			s.hits = make(map[catalog.CategoryID]int64)
		}
		s.hitsMu.Unlock()
	}
	return out
}

// mintID mints a query id owned by this shard: the splitmix64-mixed
// (salt, sequence) id with its low bits overwritten by the shard index.
// Masking costs shardIDBits of the 64-bit collision space (ids keep 58
// high bits of entropy across nodes) and can collide within one shard's
// live pending table, so minting re-rolls on collision.
func (s *engineShard) mintID() uint64 {
	for {
		s.nextQuery++
		seq := uint64(s.idx)<<48 ^ s.nextQuery
		id := (queryID(s.n.querySalt, seq) &^ uint64(shardIDMask)) | uint64(s.idx)
		if _, taken := s.pending[id]; !taken {
			return id
		}
	}
}

// register installs a new pending query on this shard and issues its
// entry message. Runs in the shard loop; the caller already passed
// admission and holds the in-flight slot.
func (s *engineShard) register(cat catalog.CategoryID, want int, docs map[catalog.DocID]bool,
	ch chan QueryOutcome, deadline time.Time, hasDeadline bool, members []model.NodeID) uint64 {
	id := s.mintID()
	now := time.Now()
	pq := &pendingQuery{
		id:       id,
		cat:      cat,
		want:     want,
		docs:     docs,
		ch:       ch,
		deadline: now.Add(maxPendingAge),
		lastSend: now,
		entry:    members,
	}
	if hasDeadline {
		pq.deadline = deadline.Add(pendingGrace)
	}
	s.pending[id] = pq
	s.sendQuery(pq)
	return id
}

// sendQuery (re)issues the query to a random reachable member of the
// serving cluster. The full demand goes out even when the cache primed a
// partial answer: intermediate nodes subtract their own matches from Want
// before forwarding, so a reduced demand would degenerate the flood and
// could strand the query one hop in.
func (s *engineShard) sendQuery(pq *pendingQuery) {
	if len(pq.entry) == 0 {
		return // all targets evicted; the sweep refills or expires
	}
	target := pq.entry[s.rng.Intn(len(pq.entry))]
	n := s.n
	n.routeMu.RLock()
	n.send(target, overlay.QueryMsg{
		ID: pq.id, Category: pq.cat, Want: pq.want, Origin: n.id, Hops: 1, Entry: true,
	})
	n.routeMu.RUnlock()
}

// sweep rotates this shard's seen-set generations and advances its
// pending queries: expired entries deliver their partial outcome, and
// silent queries re-send to another serving-cluster member after the
// resend-target list is pruned against the current membership (peers
// evicted by the failure detector leave the address book; the shard
// catches up here instead of being chased by a cross-shard broadcast).
func (s *engineShard) sweep(now time.Time) {
	s.seenPrev = s.seenCur
	s.seenCur = make(map[uint64]struct{})
	for _, pq := range s.pending {
		if now.After(pq.deadline) {
			s.finishPending(pq, false)
			s.n.stats.Add("pending_expired", 1)
			continue
		}
		if pq.received == 0 && pq.resends < maxResends && now.Sub(pq.lastSend) > resendAfter {
			s.n.routeMu.RLock()
			s.n.refillEntry(pq)
			s.n.routeMu.RUnlock()
			if len(pq.entry) == 0 {
				continue
			}
			pq.resends++
			pq.lastSend = now
			s.n.stats.Add("query_resends", 1)
			s.sendQuery(pq)
		}
	}
}

// handleQuery mirrors the simulated overlay's §3.3 target-node logic. A
// query for a category this node has no DCRT entry for is dropped (and
// counted) instead of being misrouted into cluster 0. Runs in the shard
// loop; routing state is read under routeMu.RLock.
func (s *engineShard) handleQuery(m overlay.QueryMsg) {
	if s.seenBefore(m.ID) {
		return
	}
	s.markSeen(m.ID)
	n := s.n
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	entry, ok := n.dcrt[m.Category]
	if !ok {
		n.stats.Add("drop_no_route", 1)
		return
	}
	if m.Entry {
		// §6.1.2 monitoring: count the request once per cluster entry, so
		// the adaptation layer measures category demand, not flood width.
		s.addHit(m.Category)
	}
	var matches []catalog.DocID
	if docs := n.byCat[m.Category]; len(docs) > 0 {
		// Exact-capacity allocation: the hot path pays one slice alloc,
		// never an append-grow chain (pinned by TestHandleQueryAllocs).
		take := m.Want
		if take > len(docs) {
			take = len(docs)
		}
		if take > 0 {
			matches = append(make([]catalog.DocID, 0, take), docs[:take]...)
		}
	}
	if len(matches) > 0 {
		n.served.Add(1)
		n.send(m.Origin, overlay.ResultMsg{
			ID: m.ID, Docs: matches, Hops: m.Hops, From: n.id,
		})
	}
	if remaining := m.Want - len(matches); remaining > 0 {
		if nbs := n.nrt[entry.Cluster]; len(nbs) > 0 {
			// Box the forwarded message ONCE: send takes `any`, so a
			// struct literal at each call site would re-box per neighbor —
			// one interface allocation per flood edge on the hottest path.
			var fwd any = overlay.QueryMsg{
				ID: m.ID, Category: m.Category, Want: remaining,
				Origin: m.Origin, Hops: m.Hops + 1,
			}
			for _, nb := range nbs {
				n.send(nb, fwd)
			}
		}
	}
}

// handleResult folds an inbound result into the owning pending query.
// Runs in the shard loop.
func (s *engineShard) handleResult(m overlay.ResultMsg) {
	pq, ok := s.pending[m.ID]
	if !ok {
		return
	}
	pq.received++
	for _, d := range m.Docs {
		pq.docs[d] = true
	}
	if m.Hops > pq.hops {
		pq.hops = m.Hops
	}
	if len(pq.docs) >= pq.want {
		// Report the farthest contributing result, not whichever message
		// happened to complete the set.
		s.finishPending(pq, true)
	}
}

// finishPending delivers a query's outcome exactly once and releases its
// slot. Runs in the shard loop.
func (s *engineShard) finishPending(pq *pendingQuery, done bool) {
	s.n.cacheDocs(pq.docs)
	out := pq.result(done)
	select {
	case pq.ch <- out:
	default: // caller abandoned; the slot still frees
	}
	delete(s.pending, pq.id)
	s.n.inflight.Add(-1)
}
