package livenet

// Interop coverage for the gob fallback against GENUINE pre-wire-v2
// peers. The hex frames below were captured from the pre-v2 encoder —
// envelope/helloMsg/bookMsg as structs local to this package,
// registered with plain gob.Register, i.e. wire names
// "p2pshare/internal/livenet.helloMsg"/".bookMsg" (definitions as of
// commit 9a03ccc). Gob matches interface values by registered name, so
// these bytes only decode while init() keeps registering the aliased
// wire types under the legacy names; the same-binary round-trip tests
// elsewhere cannot catch a name drift because both ends share one
// registry.

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"net"
	"testing"
	"time"

	"p2pshare/internal/model"
)

// preV2HelloFrame is gob(envelope{From: 7, Msg: helloMsg{ID: 7, Addr:
// "127.0.0.1:6117"}}) — the exact bytes a pre-v2 joiner's announce()
// writes.
const preV2HelloFrame = "267f03010108656e76656c6f706501ff80000102010446726f6d01040001034d736701100000004eff80010e012270327073686172652f696e7465726e616c2f6c6976656e65742e68656c6c6f4d7367ff810301010868656c6c6f4d736701ff8200010201024944010400010441646472010c00000017ff8213010e010e3132372e302e302e313a363131370000"

// preV2BookFrame is gob(envelope{From: 7, Msg: bookMsg{Book:
// map[model.NodeID]string{7: "127.0.0.1:6117"}}}) — a pre-v2 node's
// address-book reply.
const preV2BookFrame = "267f03010108656e76656c6f706501ff80000102010446726f6d01040001034d7367011000000046ff80010e012170327073686172652f696e7465726e616c2f6c6976656e65742e626f6f6b4d7367ff8303010107626f6f6b4d736701ff840001010104426f6f6b01ff8600000027ff85040101176d61705b6d6f64656c2e4e6f646549445d737472696e6701ff86000104010c000017ff841301010e0e3132372e302e302e313a363131370000"

func decodeHexFrame(t *testing.T, s string) []byte {
	t.Helper()
	raw, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad captured frame hex: %v", err)
	}
	return raw
}

// TestPreV2GobHelloDecodes replays a captured pre-v2 hello through this
// binary's gob registry — the inbound half of a mixed-version join.
func TestPreV2GobHelloDecodes(t *testing.T) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(decodeHexFrame(t, preV2HelloFrame))).Decode(&env); err != nil {
		t.Fatalf("decode captured pre-v2 hello: %v", err)
	}
	hello, ok := env.Msg.(helloMsg)
	if !ok {
		t.Fatalf("decoded message is %T, want helloMsg", env.Msg)
	}
	if env.From != 7 || hello.ID != 7 || hello.Addr != "127.0.0.1:6117" {
		t.Fatalf("decoded from=%d hello=%+v, want from=7 id=7 addr=127.0.0.1:6117", env.From, hello)
	}
}

// TestPreV2GobBookDecodes replays a captured pre-v2 address-book reply.
func TestPreV2GobBookDecodes(t *testing.T) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(decodeHexFrame(t, preV2BookFrame))).Decode(&env); err != nil {
		t.Fatalf("decode captured pre-v2 book: %v", err)
	}
	book, ok := env.Msg.(bookMsg)
	if !ok {
		t.Fatalf("decoded message is %T, want bookMsg", env.Msg)
	}
	if addr := book.Book[7]; addr != "127.0.0.1:6117" {
		t.Fatalf("decoded book %+v, want {7: 127.0.0.1:6117}", book.Book)
	}
}

// TestGobWireNamesStable checks the outbound direction: the names this
// binary transmits in interface values are still the legacy spellings a
// pre-v2 decoder knows.
func TestGobWireNamesStable(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(envelope{From: 1, Msg: helloMsg{ID: 1, Addr: "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(envelope{From: 1, Msg: bookMsg{Book: map[model.NodeID]string{1: "x"}}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"p2pshare/internal/livenet.helloMsg",
		"p2pshare/internal/livenet.bookMsg",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("gob stream does not carry legacy type name %q — a pre-v2 peer cannot decode it", name)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("p2pshare/internal/wire.")) {
		t.Error("gob stream carries wire-package type names, which pre-v2 peers do not know")
	}
}

// TestPreV2AnnounceReachesBook feeds the captured hello to a LIVE node
// over TCP — byte-for-byte what a pre-v2 joiner sends — and checks the
// node admits the joiner to its address book.
func TestPreV2AnnounceReachesBook(t *testing.T) {
	n, err := StartNode(testShape(), 0, "127.0.0.1:0", "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(decodeHexFrame(t, preV2HelloFrame)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n.KnownPeers() >= 2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node never admitted the pre-v2 joiner; knows %d peers", n.KnownPeers())
}
