package livenet

// The content data plane, requester and server side. A fetch is the
// bulk analogue of a query: the caller goroutine runs the whole state
// machine (no per-transfer goroutine — the idle-cluster goroutine
// budget stays nodes*4+64), replica holders serve manifest and chunk
// requests inline on their connection reader goroutines (the store is
// read-mostly and its own lock, so serving never occupies the control
// loop), and replies are demultiplexed back to the waiting fetcher
// through a transfer registry keyed by a requester-minted id.
//
// Flow control is receiver-driven: wire.ChunkReq IS the credit grant.
// A server only ever sends chunks the fetcher explicitly asked for, so
// the fetcher's outstanding window — not the sender's appetite — bounds
// bulk data in flight, and the transport's two-lane writer (transport.go)
// keeps the granted chunks from ever starving protocol frames on the
// shared stream. Every chunk is verified against the manifest as it
// lands; on a dead or lying source the fetcher fails over to the next
// replica holder and resumes from the last verified chunk — verified
// progress is never thrown away.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/content"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/wire"
)

const (
	// fetchWindow bounds a transfer's outstanding (granted, unreceived)
	// chunks: 32 × 64 KB = 2 MB in flight per transfer.
	fetchWindow = 32
	// fetchRefillAt is the low-water mark: when outstanding credit drops
	// to this, the fetcher grants the next batch — early enough to keep
	// the pipe full, late enough to coalesce grants (~1 ChunkReq per
	// window/4 chunks in steady state, not one per chunk).
	fetchRefillAt = fetchWindow / 4
	// serverMaxGrant caps how many chunks one ChunkReq may grant, so a
	// corrupt or hostile Count cannot make a server flood megabytes
	// unasked.
	serverMaxGrant = 64
	// xferChanCap sizes a transfer's reply channel. Deliveries beyond it
	// are dropped (the reader goroutine must never block on a slow
	// fetcher) and recovered by the stall re-grant.
	xferChanCap = 2 * fetchWindow
	// manifestWait / chunkStallWait bound how long a fetcher waits on a
	// silent source before re-granting once and then failing over.
	manifestWait   = 1500 * time.Millisecond
	chunkStallWait = 1200 * time.Millisecond
	// maxHashFailsPerSource is how many corrupt chunks one source may
	// send before the fetcher stops re-requesting and fails over.
	maxHashFailsPerSource = 8
	// discoverTTL bounds intra-cluster manifest-request forwarding: a
	// contacted non-holder relays the request up to this many hops deeper
	// into the serving cluster, so a fetcher whose few remote contacts
	// all miss the replica set still finds a holder. The intra-cluster
	// NRT is a sparse ring-plus-chords graph, so three hops are needed to
	// reach past a contact's immediate neighborhood.
	discoverTTL = 3
	// manifestFwdFanout is how many serving-cluster neighbors one
	// non-holder forwards a manifest request to. With discoverTTL the
	// flood per contacted source is ≤ 1+3+9+27 small frames.
	manifestFwdFanout = 3
	// maxFloods bounds how many discovery rounds one fetch runs before
	// giving up — each round forwards along a different rotation, so
	// retries explore new membership slices; maxTriesPerHolder bounds
	// chunk-phase attempts against any single discovered holder (a
	// re-flood may re-discover it).
	maxFloods         = 4
	maxTriesPerHolder = 2
	// maxMoveFetchers bounds concurrent background move-shipping
	// goroutines per node (adaptation can reassign several categories in
	// one epoch; their transfers queue rather than stampede).
	maxMoveFetchers = 2
	// moveFetchTimeout backstops one background move transfer.
	moveFetchTimeout = 2 * time.Minute
	// defaultCacheAdmitHits is the demand threshold a document must
	// clear before a fetched copy is admitted to the replica cache: two
	// observations (own fetches plus manifest requests seen) within one
	// demand window, so a one-off fetch never churns the cache.
	defaultCacheAdmitHits = 2
	// maxDemandEntries bounds the per-doc demand counter map; at the cap
	// the whole window resets (the counters are a recency signal, not an
	// account).
	maxDemandEntries = 4096
	// maxPullFetchers bounds concurrent background replica pulls
	// triggered by wire.Replicate pushes; pushes beyond it are dropped
	// (replication is best-effort by design).
	maxPullFetchers = 2
	// pushHotDocs is how many of its hottest documents an overloaded
	// holder pushes per epoch, and pushTargets how many under-loaded
	// members each of them goes to.
	pushHotDocs = 2
	pushTargets = 2
	// cacheDecayEpochs is how many adaptation epochs a cached replica
	// may sit unserved before the decay pass drops it.
	cacheDecayEpochs = 4
	// prevClusterTTL bounds how long a moved category's shedding cluster
	// stays a fetch-source fallback: long enough to cover the gaining
	// holders' background shipping (moveFetchTimeout), short enough that
	// the map cannot grow without bound across repeated reassignments.
	prevClusterTTL = 3 * time.Minute
)

// ErrNoContent reports a fetch that ran out of sources: every reachable
// replica holder was tried (twice) and none completed the transfer.
var ErrNoContent = errors.New("livenet: no replica holder could serve the document bytes")

// ContentConfig enables the content data plane on a node
// (Options.Content): a chunk store primed with the placement's
// documents, inline manifest/chunk serving, Node.Fetch, and byte-
// shipping rebalancing moves.
type ContentConfig struct {
	// ChunkSize is the transfer unit in bytes; 0 means
	// content.DefaultChunkSize (64 KB).
	ChunkSize int
	// CacheBytes budgets the demand-driven replica cache: a successful
	// remote Fetch (or an accepted Replicate push) installs the verified
	// bytes as an evictable cached copy, making this node a real replica
	// holder that answers ManifestReq floods. 0 disables caching.
	CacheBytes int64
	// CacheAdmitHits is the recent-demand threshold a document must
	// clear before a fetched copy is admitted (0 → 2): only documents
	// fetched or asked about repeatedly within one demand window earn a
	// cache slot.
	CacheAdmitHits int
}

// ContentStore exposes the node's chunk store — nil when the content
// data plane is disabled. Callers may Put real bytes before Publish to
// share non-synthetic content (see examples/musicshare).
func (n *Node) ContentStore() *content.Store { return n.store }

// TransferThroughput exposes the per-transfer throughput histogram:
// one observation (KB/s) per completed remote fetch.
func (n *Node) TransferThroughput() *metrics.SyncHistogram { return n.xferTput }

// noteDemand counts one observation of recent demand for doc — an own
// fetch or a manifest request seen — and returns the updated count. The
// window resets wholesale at the size cap: the counters are a recency
// signal driving cache admission, not an account.
func (n *Node) noteDemand(d catalog.DocID) int {
	n.demandMu.Lock()
	if len(n.demand) >= maxDemandEntries {
		n.demand = make(map[catalog.DocID]int)
	}
	n.demand[d]++
	hits := n.demand[d]
	n.demandMu.Unlock()
	return hits
}

// resetDemand clears the demand window (the decay tick calls it, so
// "recent" means within the last few adaptation epochs).
func (n *Node) resetDemand() {
	n.demandMu.Lock()
	n.demand = make(map[catalog.DocID]int)
	n.demandMu.Unlock()
}

// noteServe counts weight units of serve load attributed to doc — one
// per chunk streamed, one per manifest answered — feeding both the
// holder's hot-doc ranking and the per-epoch total reported to the
// cluster leader.
func (n *Node) noteServe(d catalog.DocID, weight int64) {
	n.serveMu.Lock()
	if len(n.servedDocs) >= maxDemandEntries {
		n.servedDocs = make(map[catalog.DocID]int64)
	}
	n.servedDocs[d] += weight
	n.serveMu.Unlock()
}

// drainServed resets the per-doc serve counters and returns the drained
// map plus its total — one epoch's content-plane load measurement
// (adaptReport calls it alongside drainHits).
func (n *Node) drainServed() (map[catalog.DocID]int64, int64) {
	n.serveMu.Lock()
	out := n.servedDocs
	n.servedDocs = make(map[catalog.DocID]int64)
	n.serveMu.Unlock()
	var total int64
	for _, w := range out {
		total += w
	}
	return out, total
}

// holdDoc records a document this node holds from birth or publish: the
// routing metadata (storeDoc) plus — when the content plane is on — a
// synthetic registration standing in for the bytes on the peer's disk.
// Documents acquired by a rebalancing move do NOT come through here;
// their bytes must arrive over the network (shipMovedDocs → Put).
func (n *Node) holdDoc(d catalog.DocID) {
	n.storeDoc(d)
	if n.store != nil {
		if doc := n.inst.Catalog.Doc(d); doc != nil {
			n.store.Register(d, doc.Size)
		}
	}
}

// registerXfer mints a transfer id and installs its reply channel.
func (n *Node) registerXfer() (uint64, chan envelope) {
	id := n.xferSeq.Add(1)
	ch := make(chan envelope, xferChanCap)
	n.xferMu.Lock()
	n.xfers[id] = ch
	n.xferMu.Unlock()
	return id, ch
}

func (n *Node) unregisterXfer(id uint64) {
	n.xferMu.Lock()
	delete(n.xfers, id)
	n.xferMu.Unlock()
}

// deliverXfer routes one Manifest/Chunk reply to the waiting fetcher.
// Called from connection reader goroutines: it must never block, so a
// full reply channel drops the frame (counted; the fetcher's stall
// re-grant recovers the chunk).
func (n *Node) deliverXfer(id uint64, env envelope) {
	n.xferMu.Lock()
	ch := n.xfers[id]
	n.xferMu.Unlock()
	if ch == nil {
		n.stats.Add("transfer_stray_frames", 1)
		return
	}
	select {
	case ch <- env:
	default:
		n.stats.Add("transfer_overruns", 1)
	}
}

// sendDirect queues one envelope to a peer from OUTSIDE the control
// loop (reader goroutines serving transfers, fetch callers): unlike
// send it takes the routing read lock itself. bulk selects the
// transport's low-priority lane, so document chunks ride behind any
// pending protocol frames instead of ahead of them.
func (n *Node) sendDirect(to model.NodeID, msg any, bulk bool) {
	n.routeMu.RLock()
	addr, ok := n.book.get(to)
	n.routeMu.RUnlock()
	if !ok {
		n.stats.Add("send_no_addr", 1)
		return
	}
	env := envelope{From: n.id, Msg: msg}
	if bulk {
		n.tr.enqueueBulk(to, addr, env)
	} else {
		n.tr.enqueue(to, addr, env)
	}
}

// serveManifestReq answers a manifest request inline on the reader
// goroutine. A holder replies straight to the request's origin; a
// member that does not hold the document forwards the request to a few
// serving-cluster neighbors instead (TTL-bounded), so holder discovery
// rides the overlay the same way queries do — placement stores each
// document on a replica subset, and the fetcher's handful of remote
// contacts need not themselves be in it. At TTL 0 the request dies
// silently; the fetcher's flood redundancy and re-flood cover the loss.
func (n *Node) serveManifestReq(from model.NodeID, m wire.ManifestReq) {
	// Every manifest request seen is one observation of demand — the
	// crowd signal cache admission keys off, whether or not this node
	// can answer.
	n.noteDemand(m.Doc)
	if n.store != nil {
		if man, ok := n.store.Manifest(m.Doc); ok {
			n.stats.Add("transfer_manifests_served", 1)
			n.noteServe(m.Doc, 1)
			n.sendDirect(m.Origin, wire.Manifest{
				Doc:       m.Doc,
				Xfer:      m.Xfer,
				Size:      man.Size,
				ChunkSize: int64(man.ChunkSize),
				Hashes:    man.Hashes,
			}, false)
			return
		}
	}
	doc := n.inst.Catalog.Doc(m.Doc)
	if m.TTL <= 0 || doc == nil || n.store == nil {
		n.stats.Add("transfer_req_dropped", 1)
		return
	}
	// Forward to addressable serving-cluster members, rotating the start
	// position by a per-node sequence so consecutive forwards — and the
	// fetcher's re-floods — fan out over different slices of the
	// membership instead of retracing one deterministic tree that may
	// simply not contain a holder.
	var next []model.NodeID
	n.routeMu.RLock()
	if e, ok := n.dcrt[doc.Categories[0]]; ok {
		members := n.nrt[e.Cluster]
		if len(members) > 0 {
			start := int((n.fwdSeq.Add(1) + uint64(n.id)) % uint64(len(members)))
			for i := 0; i < len(members) && len(next) < manifestFwdFanout; i++ {
				peer := members[(start+i)%len(members)]
				if peer == n.id || peer == m.Origin || peer == from || !n.book.has(peer) {
					continue
				}
				next = append(next, peer)
			}
		}
	}
	n.routeMu.RUnlock()
	if len(next) == 0 {
		n.stats.Add("transfer_req_dropped", 1)
		return
	}
	n.stats.Add("transfer_req_forwards", 1)
	fwd := wire.ManifestReq{Doc: m.Doc, Xfer: m.Xfer, Origin: m.Origin, TTL: m.TTL - 1}
	for _, peer := range next {
		n.sendDirect(peer, fwd, false)
	}
}

// serveChunkReq streams the granted chunk range inline on the reader
// goroutine, on the bulk lane. The grant is the flow control: nothing
// beyond [First, First+Count) is sent, and Count is clamped so a bad
// frame cannot demand an unbounded burst.
func (n *Node) serveChunkReq(from model.NodeID, m wire.ChunkReq) {
	count := m.Count
	if count > serverMaxGrant {
		count = serverMaxGrant
		n.stats.Add("transfer_grants_clamped", 1)
	}
	if n.store == nil || !n.store.Has(m.Doc) {
		n.sendDirect(from, wire.Chunk{Doc: m.Doc, Xfer: m.Xfer, Index: m.First, Missing: true}, false)
		return
	}
	for i := int64(0); i < count; i++ {
		idx := m.First + i
		data, ok := n.store.Chunk(m.Doc, int(idx))
		if !ok {
			n.sendDirect(from, wire.Chunk{Doc: m.Doc, Xfer: m.Xfer, Index: idx, Missing: true}, false)
			return
		}
		n.stats.Add("transfer_bytes_out", int64(len(data)))
		n.noteServe(m.Doc, 1)
		n.sendDirect(from, wire.Chunk{Doc: m.Doc, Xfer: m.Xfer, Index: idx, Data: data}, true)
	}
}

// observeRTT folds one manifest round-trip into the per-peer EWMA that
// orders fetch sources (nearest replica holder first).
func (n *Node) observeRTT(peer model.NodeID, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	n.rttMu.Lock()
	if old, ok := n.rtt[peer]; ok {
		ms = 0.7*old + 0.3*ms
	}
	n.rtt[peer] = ms
	n.rttMu.Unlock()
}

// prevClusterRecord remembers, for a moved category, the shedding
// cluster that still holds the only bytes — with an expiry, so the
// fallback map stays bounded across repeated reassignments and stops
// pointing at long-stale clusters (entries used to live forever).
type prevClusterRecord struct {
	cluster model.ClusterID
	expires time.Time
}

// prunePrevClusters drops expired shedding-cluster records. Called from
// the control loop whenever a move lands, so the map's size is bounded
// by the categories moved within one TTL window.
func (n *Node) prunePrevClusters(now time.Time) {
	for cat, rec := range n.prevCluster {
		if !now.Before(rec.expires) {
			delete(n.prevCluster, cat)
		}
	}
}

// fetchSources snapshots the replica holders a fetch should try, in
// preference order: members of the category's serving cluster, then —
// if adaptation recently moved the category here — members of the
// shedding cluster, which keeps the only copies until the new holders
// finish pulling bytes (lazy rebalancing). Within each tier, measured
// peers sort by RTT ascending; unmeasured peers follow in id order, so
// source selection is deterministic before any latency is known.
func (n *Node) fetchSources(cat catalog.CategoryID) []model.NodeID {
	n.routeMu.RLock()
	var out, unbooked []model.NodeID
	seen := map[model.NodeID]struct{}{n.id: {}}
	add := func(ms []model.NodeID) {
		for _, m := range ms {
			if _, dup := seen[m]; dup {
				continue
			}
			seen[m] = struct{}{}
			if n.book.has(m) {
				out = append(out, m)
			} else {
				unbooked = append(unbooked, m)
			}
		}
	}
	if e, ok := n.dcrt[cat]; ok {
		add(n.nrt[e.Cluster])
	}
	if prev, ok := n.prevCluster[cat]; ok && time.Now().Before(prev.expires) {
		add(n.nrt[prev.cluster])
	}
	n.routeMu.RUnlock()
	if len(out) == 0 {
		// Same fallback as the query engine's route snapshot: with no
		// addressable member, try the statically primed ones — the book
		// may simply not have synced yet.
		out = unbooked
	}
	n.rttMu.Lock()
	rtt := make(map[model.NodeID]float64, len(out))
	for _, m := range out {
		if v, ok := n.rtt[m]; ok {
			rtt[m] = v
		}
	}
	n.rttMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rtt[out[i]]
		rj, jok := rtt[out[j]]
		if iok != jok {
			return iok
		}
		if iok && ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}

// fetchCtxReason maps a context error to its stats counter and
// sentinel, mirroring the query engine's accounting discipline.
func fetchCtxReason(err error) (string, error) {
	if errors.Is(err, context.DeadlineExceeded) {
		return "fetch_timeouts", ErrTimeout
	}
	return "fetch_cancelled", err
}

// Fetch retrieves a document's bytes — the data-plane companion to
// QueryContext. A locally held document is returned without touching
// the network; otherwise the caller goroutine floods a TTL-bounded
// manifest request at its contacts in the document's serving cluster
// (non-holders forward it; holders answer), streams chunks from the
// first holder to respond under receiver-driven flow control, verifies
// each chunk against the manifest, and fails over to the next
// discovered holder on silence, corruption, or a holder that no longer
// has the document — resuming from the last verified chunk rather than
// restarting. Safe for many concurrent calls.
//
// Accounting: every call counts fetches_total once and exactly one of
// fetches_ok + fetch_bad_doc + fetch_closed + fetch_cancelled +
// fetch_timeouts + fetch_no_route + fetch_exhausted on exit.
func (n *Node) Fetch(ctx context.Context, d catalog.DocID) ([]byte, error) {
	start := time.Now()
	n.stats.Add("fetches_total", 1)
	doc := n.inst.Catalog.Doc(d)
	if doc == nil {
		n.stats.Add("fetch_bad_doc", 1)
		return nil, fmt.Errorf("livenet: unknown document %d", d)
	}
	if err := ctx.Err(); err != nil {
		reason, ferr := fetchCtxReason(err)
		n.stats.Add(reason, 1)
		return nil, ferr
	}
	select {
	case <-n.done:
		n.stats.Add("fetch_closed", 1)
		return nil, ErrClosed
	default:
	}
	if n.store != nil {
		if b, ok := n.store.Bytes(d); ok {
			n.stats.Add("fetch_local_hits", 1)
			n.stats.Add("fetches_ok", 1)
			return b, nil
		}
	}
	// A remote fetch is one observation of demand; the count (together
	// with manifest requests seen from the crowd) decides whether the
	// fetched bytes earn a cache slot on completion.
	demandHits := n.noteDemand(d)
	sources := n.fetchSources(doc.Categories[0])
	if len(sources) == 0 {
		n.stats.Add("fetch_no_route", 1)
		return nil, ErrNoRoute
	}

	id, ch := n.registerXfer()
	defer n.unregisterXfer(id)
	n.transfersActive.Add(1)
	defer n.transfersActive.Add(-1)

	var (
		man       *content.Manifest
		asm       *content.Assembly
		bytesIn   int64
		holders   []model.NodeID // discovered holders queued as sources
		pending   = make(map[model.NodeID]bool)
		tries     = make(map[model.NodeID]int)
		floods    int
		lastFlood time.Time
	)
	// One reusable timer across both phases.
	timer := time.NewTimer(manifestWait)
	defer timer.Stop()
	resetTimer := func(d time.Duration) {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
	}
	finish := func() ([]byte, error) {
		data, err := asm.Bytes()
		if err != nil {
			// Unreachable: finish is only called on Complete.
			n.stats.Add("fetch_exhausted", 1)
			return nil, err
		}
		if elapsed := time.Since(start).Seconds(); bytesIn > 0 && elapsed > 0 {
			n.xferTput.Observe(float64(bytesIn) / 1024 / elapsed)
		}
		// Demand-driven replication, requester side: a document the
		// demand window saw repeatedly is installed as a cached replica
		// (its own copy, since the caller owns the returned slice), so
		// this node starts answering the crowd's ManifestReq floods
		// instead of joining it.
		if n.cacheAdmit > 0 && demandHits >= n.cacheAdmit {
			cp := make([]byte, len(data))
			copy(cp, data)
			if n.store.PutCached(d, cp) {
				n.stats.Add("content_cache_installs", 1)
			}
		}
		n.stats.Add("fetches_ok", 1)
		return data, nil
	}
	// grant sends coalesced ChunkReqs for the given ascending indexes.
	grant := func(src model.NodeID, idxs []int) {
		for i := 0; i < len(idxs); {
			j := i + 1
			for j < len(idxs) && idxs[j] == idxs[j-1]+1 {
				j++
			}
			n.sendDirect(src, wire.ChunkReq{
				Doc: d, Xfer: id,
				First: int64(idxs[i]), Count: int64(j - i),
			}, false)
			i = j
		}
	}
	// noteManifest folds one Manifest frame into fetch state: the first
	// valid one pins the transfer's geometry, and every distinct sender
	// is a discovered replica holder queued as a streaming source (the
	// manifest is content-addressed, so any holder's copy is the same).
	// observe is true only during the discovery phase, when the elapsed
	// time since the flood IS the sender's round trip; manifests that
	// straggle in during the chunk phase still extend the failover queue
	// but are measured against a stale flood timestamp and would poison
	// the source-ordering EWMA with multi-second outliers.
	noteManifest := func(env envelope, observe bool) {
		m, ok := env.Msg.(wire.Manifest)
		if !ok || m.Doc != d || m.Missing {
			return
		}
		if man == nil {
			cm := &content.Manifest{Doc: d, Size: m.Size, ChunkSize: int(m.ChunkSize), Hashes: m.Hashes}
			if !cm.Valid() {
				n.stats.Add("transfer_bad_manifests", 1)
				return
			}
			man = cm
			asm = content.NewAssembly(cm)
		}
		if observe {
			n.observeRTT(env.From, time.Since(lastFlood))
		} else {
			n.stats.Add("transfer_late_manifests", 1)
		}
		if !pending[env.From] && tries[env.From] < maxTriesPerHolder {
			pending[env.From] = true
			holders = append(holders, env.From)
		}
	}
	// flood sends one TTL-bounded discovery round at every contact.
	flood := func() {
		floods++
		lastFlood = time.Now()
		req := wire.ManifestReq{Doc: d, Xfer: id, Origin: n.id, TTL: discoverTTL}
		for _, s := range sources {
			n.sendDirect(s, req, false)
		}
	}

	for {
		// Discovery: (re-)flood until at least one holder is queued.
		// Holders answer the flood with the manifest itself, so discovery
		// and the manifest phase are the same round trip.
		for len(holders) == 0 {
			if floods >= maxFloods {
				n.stats.Add("fetch_exhausted", 1)
				return nil, ErrNoContent
			}
			flood()
			resetTimer(manifestWait)
		discover:
			for len(holders) == 0 {
				select {
				case <-ctx.Done():
					reason, ferr := fetchCtxReason(ctx.Err())
					n.stats.Add(reason, 1)
					return nil, ferr
				case <-n.done:
					n.stats.Add("fetch_closed", 1)
					return nil, ErrClosed
				case <-timer.C:
					n.stats.Add("transfer_stalls", 1)
					break discover
				case env := <-ch:
					noteManifest(env, true)
				}
			}
		}
		src := holders[0]
		holders = holders[1:]
		pending[src] = false
		tries[src]++
		if asm.Complete() { // zero-length document
			return finish()
		}
		if asm.Got() > 0 {
			n.stats.Add("transfer_resumes", 1)
		}

		// Chunk phase against src: grant a window, top it back up at the
		// low-water mark, verify every arrival. One silent stall re-grants
		// the outstanding credit (the grant or the chunks may have been
		// dropped under overrun); a second consecutive stall fails over.
		// Manifests from holders the flood reached late keep arriving here
		// and extend the failover queue.
		outstanding := make(map[int]struct{}, fetchWindow)
		initial := asm.Missing(fetchWindow)
		for _, idx := range initial {
			outstanding[idx] = struct{}{}
		}
		grant(src, initial)
		resetTimer(chunkStallWait)
		stalled := false
		hashFails := 0
	chunkLoop:
		for {
			select {
			case <-ctx.Done():
				reason, ferr := fetchCtxReason(ctx.Err())
				n.stats.Add(reason, 1)
				return nil, ferr
			case <-n.done:
				n.stats.Add("fetch_closed", 1)
				return nil, ErrClosed
			case <-timer.C:
				n.stats.Add("transfer_stalls", 1)
				if stalled {
					break chunkLoop
				}
				stalled = true
				regrant := asm.Missing(fetchWindow)
				outstanding = make(map[int]struct{}, len(regrant))
				for _, idx := range regrant {
					outstanding[idx] = struct{}{}
				}
				grant(src, regrant)
				resetTimer(chunkStallWait)
			case env := <-ch:
				c, ok := env.Msg.(wire.Chunk)
				if !ok {
					noteManifest(env, false)
					continue
				}
				if c.Doc != d {
					continue
				}
				if c.Missing {
					n.stats.Add("transfer_source_missing", 1)
					break chunkLoop
				}
				added, err := asm.Add(int(c.Index), c.Data)
				if err != nil {
					if errors.Is(err, content.ErrHashMismatch) {
						n.stats.Add("chunk_hash_fail", 1)
					} else {
						n.stats.Add("transfer_bad_chunks", 1)
					}
					hashFails++
					if hashFails > maxHashFailsPerSource {
						break chunkLoop
					}
					if c.Index >= 0 && int(c.Index) < man.NumChunks() {
						grant(src, []int{int(c.Index)})
					}
					resetTimer(chunkStallWait)
					continue
				}
				if !added { // duplicate of a verified chunk (re-grant overlap)
					continue
				}
				stalled = false
				bytesIn += int64(len(c.Data))
				n.stats.Add("transfer_bytes_in", int64(len(c.Data)))
				delete(outstanding, int(c.Index))
				if asm.Complete() {
					return finish()
				}
				if len(outstanding) <= fetchRefillAt {
					var fresh []int
					for _, idx := range asm.Missing(0) {
						if len(outstanding)+len(fresh) >= fetchWindow {
							break
						}
						if _, inflight := outstanding[idx]; !inflight {
							fresh = append(fresh, idx)
						}
					}
					for _, idx := range fresh {
						outstanding[idx] = struct{}{}
					}
					grant(src, fresh)
				}
				resetTimer(chunkStallWait)
			}
		}
	}
}

// shipMovedDocs pulls the bytes of documents this node newly owes (a
// §6.1 move made it a holder) in the background, bounded to
// maxMoveFetchers concurrent shippers per node. Called from the control
// loop (applyMoveEntry) — it must only spawn, never block. Fetched
// bytes are installed with Put: move-acquired content is real network
// bytes, not a synthetic registration, which is what makes the
// rebalancing data plane honest end to end.
//
// Owed documents are queued, never dropped: with every fetcher slot
// busy the batch waits for the next free slot (counted as
// transfer_move_queued) instead of being skipped — a skipped batch was
// never retried, leaving the move-acquired holder permanently byteless.
func (n *Node) shipMovedDocs(docs []catalog.DocID) {
	if n.store == nil || len(docs) == 0 {
		return
	}
	n.moveMu.Lock()
	n.movePending = append(n.movePending, docs...)
	if n.moveFetchers.Load() >= maxMoveFetchers {
		n.stats.Add("transfer_move_queued", int64(len(docs)))
		n.moveMu.Unlock()
		return
	}
	n.moveFetchers.Add(1)
	n.moveMu.Unlock()
	n.wg.Add(1)
	go n.moveFetchLoop()
}

// moveFetchLoop is one move-shipping worker: it drains the pending
// queue one document at a time and exits when the queue is empty. The
// empty check and the fetcher-count decrement happen under the same
// lock shipMovedDocs appends under, so a doc enqueued while the last
// worker is exiting is either seen by that worker or gets a fresh one —
// never stranded.
func (n *Node) moveFetchLoop() {
	defer n.wg.Done()
	for {
		n.moveMu.Lock()
		if len(n.movePending) == 0 {
			n.moveFetchers.Add(-1)
			n.moveMu.Unlock()
			return
		}
		d := n.movePending[0]
		n.movePending = n.movePending[1:]
		n.moveMu.Unlock()
		select {
		case <-n.done:
			n.moveFetchers.Add(-1)
			return
		default:
		}
		if n.store.Has(d) {
			continue // a concurrent worker or replicate push landed it
		}
		ctx, cancel := context.WithTimeout(context.Background(), moveFetchTimeout)
		data, err := n.Fetch(ctx, d)
		cancel()
		if err != nil {
			n.stats.Add("transfer_move_failures", 1)
			continue
		}
		n.store.Put(d, data)
		n.stats.Add("transfer_move_docs", 1)
		n.stats.Add("transfer_move_bytes", int64(len(data)))
	}
}

// pushReplicas is the holder side of demand-driven replication: the
// cluster leader reported this node overloaded and named under-loaded
// members (wire.LeaderLoad.Lite); push the manifests of the hottest
// documents from the last drained serve window at them. Runs in the
// control loop — it only enqueues frames.
func (n *Node) pushReplicas(lite []model.NodeID) {
	if n.store == nil || len(n.lastServed) == 0 {
		return
	}
	type hotDoc struct {
		d catalog.DocID
		w int64
	}
	hot := make([]hotDoc, 0, len(n.lastServed))
	for d, w := range n.lastServed {
		hot = append(hot, hotDoc{d, w})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].w != hot[j].w {
			return hot[i].w > hot[j].w
		}
		return hot[i].d < hot[j].d
	})
	if len(hot) > pushHotDocs {
		hot = hot[:pushHotDocs]
	}
	for _, h := range hot {
		man, ok := n.store.Manifest(h.d)
		if !ok {
			continue
		}
		msg := wire.Replicate{
			Doc:       h.d,
			Size:      man.Size,
			ChunkSize: int64(man.ChunkSize),
			Hashes:    man.Hashes,
		}
		sent := 0
		for _, to := range lite {
			if to == n.id {
				continue
			}
			n.send(to, msg)
			n.stats.Add("replicate_pushes", 1)
			if sent++; sent >= pushTargets {
				break
			}
		}
	}
}

// handleReplicate is the receiving side of a push: validate the
// manifest, then pull the chunks back from the pusher in the background
// and install the verified bytes as a cached replica — so the push
// reuses the credit-granted chunk protocol and the bulk lane rather
// than inventing an unsolicited bulk-send path. Runs inline on the
// reader goroutine; bounded to maxPullFetchers concurrent pulls, beyond
// which pushes are dropped (replication is best-effort).
func (n *Node) handleReplicate(from model.NodeID, m wire.Replicate) {
	if n.store == nil || n.cacheAdmit <= 0 {
		n.stats.Add("replicate_drops", 1)
		return
	}
	man := &content.Manifest{Doc: m.Doc, Size: m.Size, ChunkSize: int(m.ChunkSize), Hashes: m.Hashes}
	if !man.Valid() || m.Size > n.store.CacheBudget() {
		n.stats.Add("replicate_drops", 1)
		return
	}
	if n.store.Has(m.Doc) {
		n.stats.Add("replicate_redundant", 1)
		return
	}
	for {
		cur := n.pullFetchers.Load()
		if cur >= maxPullFetchers {
			n.stats.Add("replicate_drops", 1)
			return
		}
		if n.pullFetchers.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	n.wg.Add(1)
	go n.pullReplica(from, man)
}

// pullReplica streams one pushed document's chunks from the pusher
// under the usual credit window and installs the verified bytes with
// PutCached — a directed, single-source cut of the Fetch chunk phase
// (the source is known, so there is no discovery, failover, or resume;
// one stall re-grant, then give up, the next push tries again).
func (n *Node) pullReplica(src model.NodeID, man *content.Manifest) {
	defer n.wg.Done()
	defer n.pullFetchers.Add(-1)
	id, ch := n.registerXfer()
	defer n.unregisterXfer(id)
	asm := content.NewAssembly(man)
	d := man.Doc
	grant := func(idxs []int) {
		for i := 0; i < len(idxs); {
			j := i + 1
			for j < len(idxs) && idxs[j] == idxs[j-1]+1 {
				j++
			}
			n.sendDirect(src, wire.ChunkReq{
				Doc: d, Xfer: id,
				First: int64(idxs[i]), Count: int64(j - i),
			}, false)
			i = j
		}
	}
	outstanding := make(map[int]struct{}, fetchWindow)
	initial := asm.Missing(fetchWindow)
	for _, idx := range initial {
		outstanding[idx] = struct{}{}
	}
	grant(initial)
	timer := time.NewTimer(chunkStallWait)
	defer timer.Stop()
	stalled := false
	for !asm.Complete() {
		select {
		case <-n.done:
			return
		case <-timer.C:
			if stalled {
				n.stats.Add("replicate_pull_failures", 1)
				return
			}
			stalled = true
			regrant := asm.Missing(fetchWindow)
			outstanding = make(map[int]struct{}, len(regrant))
			for _, idx := range regrant {
				outstanding[idx] = struct{}{}
			}
			grant(regrant)
			timer.Reset(chunkStallWait)
		case env := <-ch:
			c, ok := env.Msg.(wire.Chunk)
			if !ok || c.Doc != d {
				continue
			}
			if c.Missing {
				n.stats.Add("replicate_pull_failures", 1)
				return
			}
			added, err := asm.Add(int(c.Index), c.Data)
			if err != nil {
				n.stats.Add("chunk_hash_fail", 1)
				n.stats.Add("replicate_pull_failures", 1)
				return
			}
			if !added {
				continue
			}
			stalled = false
			n.stats.Add("transfer_bytes_in", int64(len(c.Data)))
			delete(outstanding, int(c.Index))
			if len(outstanding) <= fetchRefillAt && !asm.Complete() {
				var fresh []int
				for _, idx := range asm.Missing(0) {
					if len(outstanding)+len(fresh) >= fetchWindow {
						break
					}
					if _, inflight := outstanding[idx]; !inflight {
						fresh = append(fresh, idx)
					}
				}
				for _, idx := range fresh {
					outstanding[idx] = struct{}{}
				}
				grant(fresh)
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(chunkStallWait)
		}
	}
	data, err := asm.Bytes()
	if err != nil {
		n.stats.Add("replicate_pull_failures", 1)
		return
	}
	if n.store.PutCached(d, data) {
		n.stats.Add("replicate_installs", 1)
	}
}
