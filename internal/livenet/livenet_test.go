package livenet

import (
	"testing"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
)

// launchSmall starts a compact live cluster on loopback.
func launchSmall(t *testing.T, seed int64) (*Cluster, *model.Instance) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 400
	cfg.Catalog.NumCats = 12
	cfg.NumNodes = 24
	cfg.NumClusters = 4
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Launch(inst, res.Assignment, place, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, inst
}

func bigCategory(inst *model.Instance) catalog.CategoryID {
	best, docs := catalog.CategoryID(0), -1
	for i := range inst.Catalog.Cats {
		if n := len(inst.Catalog.Cats[i].Docs); n > docs {
			best, docs = inst.Catalog.Cats[i].ID, n
		}
	}
	return best
}

func TestLiveQueryOverTCP(t *testing.T) {
	c, inst := launchSmall(t, 1)
	cat := bigCategory(inst)
	out, err := c.Nodes[0].Query(cat, 3, 5*time.Second)
	if err != nil {
		t.Fatalf("query failed: %v (got %d docs)", err, len(out.Docs))
	}
	if !out.Done || len(out.Docs) < 3 {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Hops < 1 {
		t.Errorf("hops = %d", out.Hops)
	}
	// Returned documents genuinely belong to the category.
	for _, d := range out.Docs {
		if inst.Catalog.Doc(d).Categories[0] != cat {
			t.Errorf("doc %d is not in category %d", d, cat)
		}
	}
}

func TestLiveQueriesFromManyOrigins(t *testing.T) {
	c, inst := launchSmall(t, 2)
	cat := bigCategory(inst)
	type result struct {
		err  error
		done bool
	}
	results := make(chan result, len(c.Nodes))
	for _, n := range c.Nodes {
		go func(n *Node) {
			out, err := n.Query(cat, 2, 5*time.Second)
			results <- result{err, out.Done}
		}(n)
	}
	ok := 0
	for range c.Nodes {
		r := <-results
		if r.err == nil && r.done {
			ok++
		}
	}
	if ok < len(c.Nodes)*8/10 {
		t.Errorf("only %d of %d concurrent live queries completed", ok, len(c.Nodes))
	}
}

func TestLiveServingLoadRecorded(t *testing.T) {
	c, inst := launchSmall(t, 3)
	cat := bigCategory(inst)
	for i := 0; i < 10; i++ {
		if _, err := c.Nodes[i%len(c.Nodes)].Query(cat, 1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, n := range c.Nodes {
		total += n.Served()
	}
	if total < 10 {
		t.Errorf("served total %d < 10 queries", total)
	}
}

func TestLivePublishBecomesQueryable(t *testing.T) {
	c, inst := launchSmall(t, 4)
	// A brand-new document published by node 5.
	publisher := c.Nodes[5]
	ids, err := inst.Catalog.AddDocuments(1, 0.05, 0.8, publisher.rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.AttachDocument(ids[0], publisher.id); err != nil {
		t.Fatal(err)
	}
	if err := publisher.Publish(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Give the publish a moment to propagate, then query the category
	// with a demand that must include the new doc eventually. The
	// publisher itself stores the doc, so a broad query finds it.
	time.Sleep(300 * time.Millisecond)
	cat := inst.Catalog.Doc(ids[0]).Categories[0]
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, _ := c.Nodes[1].Query(cat, len(inst.Catalog.Cats[cat].Docs), 2*time.Second)
		for _, d := range out.Docs {
			if d == ids[0] {
				return // found it
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("published document never appeared in query results")
		}
	}
}

func TestLiveQueryTimeoutOnImpossibleDemand(t *testing.T) {
	c, inst := launchSmall(t, 5)
	cat := bigCategory(inst)
	// Demand more documents than exist: the query cannot complete and
	// must time out with partial results.
	out, err := c.Nodes[2].Query(cat, len(inst.Catalog.Docs)+100, 1500*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	if out.Done {
		t.Error("impossible demand reported done")
	}
	if len(out.Docs) == 0 {
		t.Error("timeout should still return partial results")
	}
}

func TestLiveClusterCloseIdempotent(t *testing.T) {
	c, _ := launchSmall(t, 6)
	c.Close()
	c.Close() // second close must not panic or hang
}
