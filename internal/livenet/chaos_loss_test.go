package livenet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/chaos"
	"p2pshare/internal/core"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
)

// Seeded chaos coverage for the resend path: the scenarios the ISSUE's
// harness reproduced before the engine fixes landed. These run against
// a real loopback cluster with the chaos fault layer injected through
// LaunchWithHooks.

// launchChaos boots a compact live cluster with every node's dial path
// wrapped by a shared chaos controller.
func launchChaos(t *testing.T, seed int64) (*Cluster, *chaos.Net, *model.Instance) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 300
	cfg.Catalog.NumCats = 8
	cfg.NumNodes = 10
	cfg.NumClusters = 2
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cn := chaos.New(seed)
	hooks := NetHooks{
		Listen: func(id model.NodeID, addr string) (net.Listener, error) {
			ln, err := net.Listen("tcp", addr)
			if err == nil {
				cn.Register(id, ln.Addr().String())
			}
			return ln, err
		},
		Dial: cn.DialFrom,
	}
	c, err := LaunchWithHooks(inst, res.Assignment, place, seed, hooks)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, cn, inst
}

// dropAllFrom sets Drop=1 on every link leaving one node — its messages
// vanish silently (dials still succeed, so no eviction side effects).
func dropAllFrom(cn *chaos.Net, from model.NodeID, peers int) {
	for to := 0; to < peers; to++ {
		if model.NodeID(to) != from {
			cn.SetLink(from, model.NodeID(to), chaos.Faults{Drop: 1})
		}
	}
}

// TestResendRecoversEntryLoss pins the loss-recovery contract: a query
// whose ENTRY message is dropped by the network still succeeds — the
// sweep notices nothing arrived, re-sends to a serving-cluster member
// under the same id (never flooded, so dedup cannot suppress it), and
// the retry lands within the maxResends budget. Seeded: the fault
// pattern replays exactly from the chaos seed.
func TestResendRecoversEntryLoss(t *testing.T) {
	const seed = 1009
	c, cn, inst := launchChaos(t, seed)
	origin := c.Nodes[0]
	cat := bigCategory(inst)

	// The cache would answer the repeat query locally and prove nothing.
	if err := origin.SetCacheCapacity(cache.LRU, 0); err != nil {
		t.Fatal(err)
	}
	// Warm the path fault-free so streams are negotiated; the loss below
	// then hits a data frame, not the codec handshake.
	if out, err := origin.Query(cat, 1, 5*time.Second); err != nil || !out.Done {
		t.Fatalf("warmup query failed: %+v, %v", out, err)
	}

	// Lose everything origin sends; the entry message dies on the wire.
	// Heal at 2.2s: any entry send — immediate on a warmed stream, or
	// delayed ~1s by a negotiation stall on a cold one — has been
	// consumed and dropped by then, and the resend budget (two sends,
	// >= 1.2s apart) cannot be exhausted before the heal.
	dropAllFrom(cn, origin.ID(), len(c.Nodes))
	go func() {
		time.Sleep(2200 * time.Millisecond)
		cn.Clear()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := origin.QueryContext(ctx, cat, 1)
	if err != nil || !out.Done {
		t.Fatalf("query across entry loss failed (chaos seed %d): %+v, %v", seed, out, err)
	}
	s := origin.Stats()
	if s["query_resends"] < 1 {
		t.Fatalf("query succeeded without a resend; the entry loss never happened (chaos seed %d)", seed)
	}
	if s["query_resends"] > maxResends {
		t.Fatalf("resends %d exceeded maxResends %d", s["query_resends"], maxResends)
	}
}

// TestEvictedTargetsRefilled pins the refill contract: a pending query
// whose entire resend-target list was evicted (membership declared every
// original target dead) is rebuilt from the current routing tables by
// the sweep and then completes — instead of silently stalling until its
// deadline.
func TestEvictedTargetsRefilled(t *testing.T) {
	const seed = 2003
	c, cn, inst := launchChaos(t, seed)
	origin := c.Nodes[0]
	cat := bigCategory(inst)

	// Phase 1: drop origin's sends so the query receives nothing and
	// stays in the resend-eligible state.
	dropAllFrom(cn, origin.ID(), len(c.Nodes))

	ctx, cancel := context.WithTimeout(context.Background(), 12*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		out, err := origin.QueryContext(ctx, cat, 1)
		if err == nil && !out.Done {
			err = ErrTimeout
		}
		done <- err
	}()

	// Wait until the query is registered, then let the entry message be
	// consumed and dropped (a cold stream stalls ~1s in negotiation
	// before the frame is written into the fault layer and lost).
	waitFor(t, 2*time.Second, "query pending", func() bool { return origin.InFlight() == 1 })
	time.Sleep(1300 * time.Millisecond)

	// Simulate the death cascade: every original target evicted from the
	// pending entry, on every shard. Then heal — the refilled resend
	// must get through.
	for _, s := range origin.shards {
		cleared := make(chan struct{})
		s.cmds <- func(s *engineShard) {
			for _, pq := range s.pending {
				pq.entry = nil
			}
			close(cleared)
		}
		<-cleared
	}
	cn.Clear()

	if err := <-done; err != nil {
		t.Fatalf("all-targets-evicted query did not recover (chaos seed %d): %v", seed, err)
	}
	if origin.Stats()["query_resends"] < 1 {
		t.Fatal("query completed without the refilled resend firing")
	}
}

// TestUnroutableQueryExpiresNotLeaks pins the other half of the
// contract: when refill finds NOTHING (no addressable serving-cluster
// member survives), the query expires — the caller gets its timeout and
// the sweep reaps the slot — rather than leaking a pending-table entry.
func TestUnroutableQueryExpiresNotLeaks(t *testing.T) {
	const seed = 3001
	c, cn, inst := launchChaos(t, seed)
	origin := c.Nodes[0]
	cat := bigCategory(inst)

	dropAllFrom(cn, origin.ID(), len(c.Nodes))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := origin.QueryContext(ctx, cat, 1)
		done <- err
	}()
	waitFor(t, 2*time.Second, "query pending", func() bool { return origin.InFlight() == 1 })

	// Evict every peer: the death cascade empties the entry list AND the
	// address book, so refill has nothing to rebuild from.
	evicted := make(chan struct{})
	origin.cmds <- func(n *Node) {
		var ids []model.NodeID
		n.book.forEach(func(id model.NodeID, _ string) bool {
			if id != n.id {
				ids = append(ids, id)
			}
			return true
		})
		for _, id := range ids {
			n.evictDeadPeer(id)
		}
		close(evicted)
	}
	<-evicted

	if err := <-done; !errors.Is(err, ErrTimeout) {
		t.Fatalf("unroutable query returned %v, want ErrTimeout", err)
	}
	// Not leaked: the slot frees with the caller's timeout, and nothing
	// lingers past its deadline for the sweep to miss.
	waitFor(t, 3*time.Second, "pending table drained", func() bool {
		return origin.TableSizes()["pending"] == 0
	})
	if overdue := origin.OverduePending(0); overdue != 0 {
		t.Fatalf("%d pending queries leaked past their deadline", overdue)
	}
}

// TestSweepReapsAbandonedPending pins the sweep backstop directly: a
// pending entry whose caller is gone (deadline already past, nobody
// listening) is reaped by the next sweep instead of leaking forever.
func TestSweepReapsAbandonedPending(t *testing.T) {
	c, _, _ := launchChaos(t, 4001)
	n := c.Nodes[1]

	planted := make(chan struct{})
	sh := n.shards[0]
	sh.cmds <- func(s *engineShard) {
		pq := &pendingQuery{
			id:       s.mintID(), // an id this shard owns
			cat:      0,
			want:     1,
			docs:     map[catalog.DocID]bool{},
			ch:       make(chan QueryOutcome, 1),
			deadline: time.Now().Add(-time.Second), // already expired
		}
		s.pending[pq.id] = pq
		s.n.inflight.Add(1)
		close(planted)
	}
	<-planted

	waitFor(t, 2*sweepInterval+time.Second, "abandoned entry reaped", func() bool {
		return n.TableSizes()["pending"] == 0
	})
	if got := n.Stats()["pending_expired"]; got < 1 {
		t.Fatalf("pending_expired = %d, want >= 1", got)
	}
}
