package livenet

import (
	"encoding/gob"
	"math/rand"
	"net"
	"sync"
	"time"

	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
)

// The live transport keeps ONE persistent framed gob stream per
// (sender, receiver) pair instead of dialing a fresh TCP connection for
// every message. Each destination peer gets a bounded outbound queue
// drained by a dedicated writer goroutine that dials lazily, reuses the
// established stream, and reconnects on failure with capped exponential
// backoff plus jitter. Messages carry a small retry budget; a message
// that exhausts it is dropped (the protocols are best-effort, exactly as
// in the simulator) and counted. After enough consecutive dial failures
// the transport reports the peer as down so the node can evict it from
// its NRT — graceful degradation instead of silently routing into a
// black hole.
const (
	// dialTimeout bounds one connection attempt.
	dialTimeout = 2 * time.Second
	// writeTimeout bounds one envelope encode on an established stream.
	writeTimeout = 2 * time.Second
	// maxSendAttempts is the per-message retry budget (dial failures and
	// broken-stream re-encodes both consume attempts).
	maxSendAttempts = 3
	// backoffBase/backoffCap shape the reconnect backoff: base<<fails,
	// capped, plus up to 50% jitter.
	backoffBase = 25 * time.Millisecond
	backoffCap  = 1 * time.Second
	// evictAfterFails is how many consecutive dial failures mark a peer
	// down (the writer keeps retrying afterwards — a restarted peer is
	// picked up again — but the node stops routing queries through it).
	evictAfterFails = 5
	// sendQueueCap bounds each peer's outbound queue; enqueue never
	// blocks the event loop — overflow is dropped and counted.
	sendQueueCap = 256
)

// transport is one node's connection pool. All methods are safe for
// concurrent use; in practice enqueue is called from the owning node's
// event loop and the writers run concurrently.
type transport struct {
	from  model.NodeID
	seed  int64
	stats *metrics.SyncCounter

	mu     sync.Mutex
	peers  map[model.NodeID]*peerConn
	closed bool

	done chan struct{}
	wg   sync.WaitGroup

	// dial is swappable so tests can inject dial failures.
	dialMu sync.Mutex
	dial   func(addr string) (net.Conn, error)

	// onPeerDown fires (outside the transport locks) after
	// evictAfterFails consecutive dial failures to one peer.
	onPeerDown func(model.NodeID)
}

// peerConn is the queue and address of one destination peer. The
// connection itself lives in the writer goroutine's locals.
type peerConn struct {
	to    model.NodeID
	queue chan envelope

	mu   sync.Mutex
	addr string
}

func (p *peerConn) setAddr(addr string) {
	p.mu.Lock()
	p.addr = addr
	p.mu.Unlock()
}

func (p *peerConn) currentAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

func newTransport(from model.NodeID, seed int64, stats *metrics.SyncCounter) *transport {
	return &transport{
		from:  from,
		seed:  seed,
		stats: stats,
		peers: make(map[model.NodeID]*peerConn),
		done:  make(chan struct{}),
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, dialTimeout)
		},
	}
}

// setDial swaps the dial function (test fault injection).
func (t *transport) setDial(f func(addr string) (net.Conn, error)) {
	t.dialMu.Lock()
	t.dial = f
	t.dialMu.Unlock()
}

func (t *transport) dialPeer(addr string) (net.Conn, error) {
	t.dialMu.Lock()
	f := t.dial
	t.dialMu.Unlock()
	return f(addr)
}

// enqueue hands an envelope to the peer's writer. It never blocks: a
// full queue drops the message (counted) rather than stalling the event
// loop.
func (t *transport) enqueue(to model.NodeID, addr string, env envelope) {
	p := t.peer(to, addr)
	if p == nil {
		return // transport closed
	}
	p.setAddr(addr)
	select {
	case p.queue <- env:
	default:
		t.stats.Add("transport_drops_queue_full", 1)
	}
}

// peer returns the peerConn for a destination, starting its writer on
// first use. Returns nil after close.
func (t *transport) peer(to model.NodeID, addr string) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	p, ok := t.peers[to]
	if !ok {
		p = &peerConn{to: to, addr: addr, queue: make(chan envelope, sendQueueCap)}
		t.peers[to] = p
		t.wg.Add(1)
		go t.run(p)
	}
	return p
}

// queueDepth sums the outbound backlog across all peers (a point-in-time
// gauge).
func (t *transport) queueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := 0
	for _, p := range t.peers {
		depth += len(p.queue)
	}
	return depth
}

// close stops every writer and waits for them. Safe to call twice.
func (t *transport) close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
}

// run is the writer goroutine for one peer: it drains the queue, dialing
// lazily and reusing the stream across messages.
func (t *transport) run(p *peerConn) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	rng := rand.New(rand.NewSource(t.seed + int64(t.from)*7919 + int64(p.to)*104729))
	dialFails := 0   // consecutive dial failures (drives backoff + eviction)
	notified := false // onPeerDown fired for the current outage
	for {
		select {
		case <-t.done:
			return
		case env := <-p.queue:
			sent := false
			for attempt := 0; attempt < maxSendAttempts; attempt++ {
				if attempt > 0 {
					t.stats.Add("transport_retries", 1)
				}
				if conn == nil {
					c, err := t.dialPeer(p.currentAddr())
					if err != nil {
						dialFails++
						t.stats.Add("transport_dial_failures", 1)
						if dialFails >= evictAfterFails && !notified {
							notified = true
							t.stats.Add("transport_peer_evictions", 1)
							if t.onPeerDown != nil {
								t.onPeerDown(p.to)
							}
						}
						if !t.backoff(rng, dialFails) {
							return // transport closed mid-backoff
						}
						continue
					}
					t.stats.Add("transport_dials", 1)
					dialFails = 0
					notified = false
					conn, enc = c, gob.NewEncoder(c)
				} else {
					t.stats.Add("transport_reuses", 1)
				}
				conn.SetWriteDeadline(time.Now().Add(writeTimeout))
				if err := enc.Encode(env); err != nil {
					// Stream broke (peer restarted or died): reconnect on
					// the next attempt and re-encode this same envelope.
					conn.Close()
					conn, enc = nil, nil
					t.stats.Add("transport_reconnects", 1)
					continue
				}
				t.stats.Add("transport_sends", 1)
				sent = true
				break
			}
			if !sent {
				t.stats.Add("transport_send_failures", 1)
			}
		}
	}
}

// backoff sleeps min(base<<(fails-1), cap) plus up to 50% jitter,
// returning false if the transport closed while waiting.
func (t *transport) backoff(rng *rand.Rand, fails int) bool {
	d := backoffCap
	if shift := uint(fails - 1); shift < 6 {
		d = backoffBase << shift
	}
	if d > backoffCap {
		d = backoffCap
	}
	d += time.Duration(rng.Int63n(int64(d/2) + 1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.done:
		return false
	}
}
