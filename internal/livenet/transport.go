package livenet

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/wire"
)

// The live transport keeps ONE persistent framed stream per
// (sender, receiver) pair instead of dialing a fresh TCP connection for
// every message. Each destination peer gets a bounded outbound queue
// drained by a dedicated writer goroutine that dials lazily, reuses the
// established stream, and reconnects on failure with capped exponential
// backoff plus jitter.
//
// Two things make the wire path fast (the v2 work):
//
//   - Codec. At stream open the writer negotiates the internal/wire v2
//     binary codec (compact varint frames, no reflection, pooled encode
//     buffers). A peer that CLOSES the stream on the preamble is a
//     legacy gob node: the writer falls back to gob for that peer
//     (counted as codec_fallback, sticky), so mixed-version deployments
//     keep working. An ack TIMEOUT is ambiguous (genuine legacy decoders
//     block rather than close; v2 peers can stall transiently), so it
//     downgrades only the one stream and goes sticky only after a
//     streak — see connect().
//   - Write coalescing. The writer drains its queue in batches of up to
//     maxBatchMsgs envelopes through one bufio.Writer and flushes when
//     the queue is empty or the batch is full — many envelopes per
//     syscall under load, zero added latency when traffic is sparse
//     (an envelope arriving alone flushes immediately). Batch sizes are
//     observed in a histogram; bytes that reach the socket are counted
//     as wire_bytes_out.
//
// Messages carry a small retry budget; a batch that exhausts it is
// dropped (the protocols are best-effort, exactly as in the simulator)
// and counted. After enough consecutive dial failures the transport
// reports the peer as down so the node can evict it from its NRT —
// graceful degradation instead of silently routing into a black hole.
const (
	// dialTimeout bounds one connection attempt.
	dialTimeout = 2 * time.Second
	// writeTimeout bounds one batch write+flush on an established stream.
	writeTimeout = 2 * time.Second
	// negotiateTimeout bounds the codec handshake at stream open (the
	// preamble write plus the one-byte ack read). A legacy gob receiver
	// never acks: it either closes the stream outright (an immediate
	// EOF) or — the real pre-v2 decoder — blocks mid-message, in which
	// case this deadline is what surfaces the fallback.
	negotiateTimeout = 1 * time.Second
	// legacyNegotiateStreak is how many CONSECUTIVE ack timeouts prove a
	// peer legacy (sticky gob). Below the streak each timeout downgrades
	// only the one stream, so a transient stall — a v2 peer restarting
	// between accept and ack — cannot permanently pin a v2-capable peer
	// to the slower codec.
	legacyNegotiateStreak = 3
	// maxSendAttempts is the per-batch retry budget (dial failures and
	// broken-stream rewrites both consume attempts).
	maxSendAttempts = 3
	// backoffBase/backoffCap shape the reconnect backoff: base<<fails,
	// capped, plus up to 50% jitter.
	backoffBase = 25 * time.Millisecond
	backoffCap  = 1 * time.Second
	// evictAfterFails is how many consecutive dial failures mark a peer
	// down (the writer keeps retrying afterwards — a restarted peer is
	// picked up again — but the node stops routing queries through it).
	evictAfterFails = 5
	// sendQueueCap bounds each peer's outbound queue; enqueue never
	// blocks the event loop — overflow is dropped and counted.
	sendQueueCap = 256
	// defaultWriterIdle is how long a peer's writer goroutine sits with an
	// empty queue before parking: it closes its stream, exits, and is
	// respawned lazily by the next enqueue. Writer goroutines therefore
	// scale with ACTIVE links, not address-book size — the property that
	// lets a 10k-node in-process cluster idle at a handful of goroutines
	// per node. Options.WriterIdle overrides it (negative disables
	// parking).
	defaultWriterIdle = 45 * time.Second
	// maxBatchMsgs caps how many queued envelopes one flush coalesces.
	maxBatchMsgs = 64
	// bulkQueueCap bounds each peer's bulk (chunk) queue. Separate from
	// sendQueueCap so a transfer's worth of queued chunks can never
	// crowd protocol frames out of their queue.
	bulkQueueCap = 256
	// maxBulkPerBatch caps bulk envelopes per flush. Chunks run ~64 KB,
	// so this bounds one batch's bulk payload (~512 KB) and therefore
	// how long a protocol frame arriving just after a flush started can
	// wait behind bulk bytes already committed to the socket.
	maxBulkPerBatch = 8
	// writeBufBytes sizes each peer stream's write buffer; a batch that
	// outgrows it flushes early inside bufio.
	writeBufBytes = 64 << 10
)

// transport is one node's connection pool. All methods are safe for
// concurrent use; in practice enqueue is called from the owning node's
// event loop and the writers run concurrently.
type transport struct {
	from    model.NodeID
	seed    int64
	stats   *metrics.SyncCounter
	batches *metrics.SyncHistogram // envelopes coalesced per flush

	mu     sync.Mutex
	peers  map[model.NodeID]*peerConn
	closed bool

	done chan struct{}
	wg   sync.WaitGroup

	// writerIdle is the parking timeout (see defaultWriterIdle); negative
	// disables parking. Set before the node's loops start, read-only after.
	writerIdle time.Duration
	// writersActive gauges how many writer goroutines exist right now
	// (spawned minus parked/exited) — exported as transport_writers_active.
	writersActive atomic.Int64

	// forceGob skips v2 negotiation on every stream (legacy-node
	// simulation in tests, codec baseline in benchmarks).
	forceGob atomic.Bool
	// flushEach flushes after every envelope, reproducing the
	// syscall-per-message behavior of the pre-batching transport
	// (benchmark baseline only).
	flushEach atomic.Bool

	// dial is swappable so tests can inject dial failures.
	dialMu sync.Mutex
	dial   func(addr string) (net.Conn, error)

	// onPeerDown fires (outside the transport locks) after
	// evictAfterFails consecutive dial failures to one peer.
	onPeerDown func(model.NodeID)
}

// peerConn is the queue and address of one destination peer. The
// connection itself lives in the writer goroutine's locals.
//
// Two outbound queues implement the data/control priority split: queue
// carries protocol frames (queries, probes, adaptation — everything
// latency-sensitive), bulk carries chunk transfers. The writer drains
// protocol strictly first and admits at most maxBulkPerBatch bulk
// envelopes per flush, so a saturating transfer cannot starve the
// protocol path — it only uses the bandwidth protocol traffic leaves
// idle.
type peerConn struct {
	to    model.NodeID
	queue chan envelope
	bulk  chan envelope

	// running reports whether a writer goroutine currently owns the
	// queue. Guarded by transport.mu — and so is every send into queue —
	// which is what makes the park/enqueue handoff airtight: a parking
	// writer re-checks len(queue) under the same lock the producers push
	// under, so a message either finds a live writer or spawns one.
	running bool

	// gobOnly is set when negotiation proves the peer is a legacy gob
	// node — it closed the stream on the preamble, or timed out the ack
	// legacyNegotiateStreak times in a row; every future stream to it
	// skips the preamble. A lone transient timeout never sets it, so one
	// slow handshake cannot permanently downgrade a v2-capable peer.
	gobOnly atomic.Bool

	mu   sync.Mutex
	addr string
}

func (p *peerConn) setAddr(addr string) {
	p.mu.Lock()
	p.addr = addr
	p.mu.Unlock()
}

func (p *peerConn) currentAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

func newTransport(from model.NodeID, seed int64, stats *metrics.SyncCounter) *transport {
	return &transport{
		from:       from,
		seed:       seed,
		stats:      stats,
		batches:    &metrics.SyncHistogram{},
		peers:      make(map[model.NodeID]*peerConn),
		done:       make(chan struct{}),
		writerIdle: defaultWriterIdle,
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, dialTimeout)
		},
	}
}

// setDial swaps the dial function (test fault injection).
func (t *transport) setDial(f func(addr string) (net.Conn, error)) {
	t.dialMu.Lock()
	t.dial = f
	t.dialMu.Unlock()
}

func (t *transport) dialPeer(addr string) (net.Conn, error) {
	t.dialMu.Lock()
	f := t.dial
	t.dialMu.Unlock()
	return f(addr)
}

// enqueue hands a protocol envelope to the peer's writer, spawning one
// if the peer's writer is parked (or never started). It never blocks: a
// full queue drops the message (counted) rather than stalling the event
// loop.
func (t *transport) enqueue(to model.NodeID, addr string, env envelope) {
	t.enqueueOn(to, addr, env, false)
}

// enqueueBulk queues a chunk-transfer envelope at bulk priority: it
// rides the same stream but the writer only lets it into a batch when
// no protocol frame is waiting.
func (t *transport) enqueueBulk(to model.NodeID, addr string, env envelope) {
	t.enqueueOn(to, addr, env, true)
}

func (t *transport) enqueueOn(to model.NodeID, addr string, env envelope, bulk bool) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	p, ok := t.peers[to]
	if !ok {
		p = newPeerConn(to, addr)
		t.peers[to] = p
	}
	p.setAddr(addr)
	q := p.queue
	if bulk {
		q = p.bulk
	}
	dropped := false
	select {
	case q <- env:
	default:
		dropped = true
	}
	spawn := !dropped && !p.running
	if spawn {
		p.running = true
		t.wg.Add(1)
		t.writersActive.Add(1)
	}
	t.mu.Unlock()
	if spawn {
		go t.run(p)
	}
	if dropped {
		if bulk {
			t.stats.Add("transport_drops_bulk_full", 1)
		} else {
			t.stats.Add("transport_drops_queue_full", 1)
		}
	}
}

func newPeerConn(to model.NodeID, addr string) *peerConn {
	return &peerConn{
		to:    to,
		addr:  addr,
		queue: make(chan envelope, sendQueueCap),
		bulk:  make(chan envelope, bulkQueueCap),
	}
}

// peer returns (creating if needed) the peerConn for a destination
// WITHOUT starting its writer — enqueue owns spawning. Returns nil after
// close. Exists for tests that inspect per-peer state (gobOnly).
func (t *transport) peer(to model.NodeID, addr string) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	p, ok := t.peers[to]
	if !ok {
		p = newPeerConn(to, addr)
		t.peers[to] = p
	}
	return p
}

// park retires an idle writer: under t.mu — the same lock every enqueue
// pushes under — it re-checks the queue and, if still empty, clears
// running so the next enqueue respawns. Returns false when an envelope
// raced in, in which case the caller keeps draining.
func (t *transport) park(p *peerConn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(p.queue) > 0 || len(p.bulk) > 0 {
		return false
	}
	p.running = false
	return true
}

// writers reports how many writer goroutines are currently live.
func (t *transport) writers() int64 { return t.writersActive.Load() }

// queueDepth sums the outbound backlog across all peers (a point-in-time
// gauge).
func (t *transport) queueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := 0
	for _, p := range t.peers {
		depth += len(p.queue) + len(p.bulk)
	}
	return depth
}

// close stops every writer and waits for them. Safe to call twice.
func (t *transport) close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
}

// countingWriter counts bytes that reach the socket (post-coalescing, so
// one Add per flush, not per envelope).
type countingWriter struct {
	w     io.Writer
	stats *metrics.SyncCounter
	label string
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.stats.Add(cw.label, int64(n))
	}
	return n, err
}

// peerWriter is one writer goroutine's connection state: the socket, the
// batching buffer, and the codec negotiated for the current stream.
type peerWriter struct {
	t   *transport
	p   *peerConn
	rng *rand.Rand

	conn   net.Conn
	bw     *bufio.Writer // coalesces frames; flushed once per batch
	gobEnc *gob.Encoder  // non-nil ⇒ this stream speaks the gob fallback

	dialFails int  // consecutive dial failures (drives backoff + eviction)
	notified  bool // onPeerDown fired for the current outage
	// negotiateTimeouts counts consecutive ack timeouts; a streak of
	// legacyNegotiateStreak makes the gob downgrade sticky (see connect).
	negotiateTimeouts int
}

// run is the writer goroutine for one peer: it drains the queue in
// batches, dialing lazily and reusing the stream across messages. A
// writer whose queue stays empty for writerIdle parks — closes its
// stream and exits — and the next enqueue respawns it; the respawned
// writer re-dials, re-negotiates the codec (the sticky gobOnly verdict
// survives on the peerConn), and re-resolves the peer's current address,
// so a peer that moved while the link was parked is picked up cleanly.
func (t *transport) run(p *peerConn) {
	defer t.wg.Done()
	defer t.writersActive.Add(-1)
	w := &peerWriter{
		t: t, p: p,
		rng: rand.New(rand.NewSource(t.seed + int64(t.from)*7919 + int64(p.to)*104729)),
	}
	defer w.drop()
	var idle *time.Timer
	var idleC <-chan time.Time
	if t.writerIdle > 0 {
		idle = time.NewTimer(t.writerIdle)
		defer idle.Stop()
		idleC = idle.C
	}
	resetIdle := func() {
		if idle == nil {
			return
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(t.writerIdle)
	}
	// fillBatch coalesces whatever is already queued behind the batch's
	// first envelope: every waiting protocol frame first, then at most
	// maxBulkPerBatch chunks into the slots protocol traffic left free.
	// No waiting anywhere, so a lone envelope still flushes immediately.
	fillBatch := func(batch []envelope) []envelope {
	drainProto:
		for len(batch) < maxBatchMsgs {
			select {
			case e := <-p.queue:
				batch = append(batch, e)
			default:
				break drainProto
			}
		}
		bulkTaken := 0
	drainBulk:
		for len(batch) < maxBatchMsgs && bulkTaken < maxBulkPerBatch {
			select {
			case e := <-p.bulk:
				batch = append(batch, e)
				bulkTaken++
			default:
				break drainBulk
			}
		}
		return batch
	}
	batch := make([]envelope, 0, maxBatchMsgs)
	for {
		// Biased receive: when both queues are ready the unbiased select
		// below would pick at random, letting a saturating transfer win
		// half the flushes. Protocol frames go first, always.
		select {
		case env := <-p.queue:
			if !w.deliver(fillBatch(append(batch[:0], env))) {
				return
			}
			resetIdle()
			continue
		default:
		}
		select {
		case <-t.done:
			return
		case <-idleC:
			if t.park(p) {
				t.stats.Add("transport_writer_parks", 1)
				return
			}
			// An envelope raced the timer: keep running, drain it on the
			// next loop iteration with a fresh idle window.
			idle.Reset(t.writerIdle)
		case env := <-p.queue:
			if !w.deliver(fillBatch(append(batch[:0], env))) {
				return // transport closed mid-backoff
			}
			resetIdle()
		case env := <-p.bulk:
			// Protocol frames that arrived since the last flush still
			// jump ahead of this chunk inside the batch.
			batch = batch[:0]
		proto:
			for len(batch) < maxBatchMsgs-1 {
				select {
				case e := <-p.queue:
					batch = append(batch, e)
				default:
					break proto
				}
			}
			batch = append(batch, env)
			if !w.deliver(fillBatch(batch)) {
				return
			}
			resetIdle()
		}
	}
}

// deliver writes one batch through the persistent stream — usually one
// syscall for the whole batch via the buffered writer. The retry budget
// is per batch; envelopes already framed when a flush fails are lost
// (best-effort, exactly like bytes that made it into a dead kernel
// buffer) and only the envelope that failed mid-write is retried on the
// reconnected stream. Only envelopes confirmed on the socket by a
// successful Flush count as transport_sends (and in the batch
// histogram); framed-but-unflushed envelopes are send failures. Returns
// false when the transport closed.
func (w *peerWriter) deliver(batch []envelope) bool {
	t := w.t
	sent := 0  // next envelope to frame (the resume point after a reconnect)
	acked := 0 // confirmed on the socket by a successful Flush
	lost := 0  // framed into a stream that died before their flush
	for attempt := 0; attempt < maxSendAttempts; attempt++ {
		if attempt > 0 {
			t.stats.Add("transport_retries", 1)
		}
		if w.conn == nil {
			ok, alive := w.connect()
			if !alive {
				return false
			}
			if !ok {
				continue // dial failed; backoff already served
			}
		} else if attempt == 0 {
			t.stats.Add("transport_reuses", 1)
		}
		w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		var err error
		for sent < len(batch) {
			if err = w.writeEnvelope(batch[sent]); err != nil {
				break
			}
			sent++
			if t.flushEach.Load() {
				if err = w.bw.Flush(); err != nil {
					break
				}
				acked = sent - lost
			}
		}
		if err == nil {
			if err = w.bw.Flush(); err == nil {
				acked = sent - lost
			}
		}
		if err != nil {
			// Stream broke (peer restarted or died): everything framed
			// but not yet flushed died with the buffer. Reconnect on the
			// next attempt and resume from the failed envelope.
			lost = sent - acked
			w.drop()
			t.stats.Add("transport_reconnects", 1)
			continue
		}
		break
	}
	if acked > 0 {
		t.stats.Add("transport_sends", int64(acked))
		t.batches.Observe(float64(acked))
	}
	if failed := len(batch) - acked; failed > 0 {
		t.stats.Add("transport_send_failures", int64(failed))
	}
	return true
}

// connect dials the peer and, unless it is known to be gob-only,
// negotiates the v2 codec. On dial failure it serves the backoff and
// returns ok=false; alive reports whether the transport is still open.
func (w *peerWriter) connect() (ok, alive bool) {
	t, p := w.t, w.p
	c, err := t.dialPeer(p.currentAddr())
	gobStream := p.gobOnly.Load() || t.forceGob.Load()
	if err == nil && !gobStream {
		switch negotiate(c) {
		case negotiated:
			w.negotiateTimeouts = 0
		case legacyPeer:
			// It closed the stream on the preamble — proof it will never
			// ack. Redial and speak gob to this peer from now on.
			c.Close()
			t.stats.Add("codec_fallback", 1)
			p.gobOnly.Store(true)
			gobStream = true
			c, err = t.dialPeer(p.currentAddr())
		case negotiateFailed:
			// Ambiguous. A REAL pre-v2 receiver does not close on the
			// preamble — its gob decoder reads 'P' as an 80-byte message
			// length and blocks (up to readIdleTimeout) waiting for the
			// rest — so an ack timeout is the normal legacy signal in a
			// genuine mixed deployment. But it is also what a v2 peer
			// restarting between accept and ack (or stalled under load)
			// produces. Fall back to gob for THIS stream only — v2
			// receivers sniff and accept gob, so traffic flows either
			// way — and make the downgrade sticky only after a streak of
			// consecutive timeouts, so one slow handshake cannot
			// permanently pin a v2-capable peer to the slower codec.
			c.Close()
			t.stats.Add("codec_fallback", 1)
			t.stats.Add("transport_negotiate_timeouts", 1)
			gobStream = true
			w.negotiateTimeouts++
			if w.negotiateTimeouts >= legacyNegotiateStreak {
				p.gobOnly.Store(true)
			}
			c, err = t.dialPeer(p.currentAddr())
		}
	}
	if err != nil {
		w.dialFails++
		t.stats.Add("transport_dial_failures", 1)
		if w.dialFails >= evictAfterFails && !w.notified {
			w.notified = true
			t.stats.Add("transport_peer_evictions", 1)
			if t.onPeerDown != nil {
				t.onPeerDown(p.to)
			}
		}
		return false, t.backoff(w.rng, w.dialFails)
	}
	t.stats.Add("transport_dials", 1)
	w.dialFails = 0
	w.notified = false
	w.conn = c
	w.bw = bufio.NewWriterSize(&countingWriter{w: c, stats: t.stats, label: "wire_bytes_out"}, writeBufBytes)
	if gobStream {
		w.gobEnc = gob.NewEncoder(w.bw)
	} else {
		w.gobEnc = nil
	}
	return true, true
}

// negotiationResult classifies one codec handshake attempt.
type negotiationResult int

const (
	negotiated      negotiationResult = iota // peer acked v2
	legacyPeer                               // peer closed the stream on the preamble: gob node
	negotiateFailed                          // transient failure: retry v2 on the next connect
)

// negotiate writes the v2 preamble and waits for the receiver's
// one-byte ack.
func negotiate(c net.Conn) negotiationResult {
	c.SetDeadline(time.Now().Add(negotiateTimeout))
	defer c.SetDeadline(time.Time{})
	if _, err := c.Write(wire.Preamble()); err != nil {
		return classifyNegotiateErr(err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(c, ack[:]); err != nil {
		return classifyNegotiateErr(err)
	}
	if ack[0] != wire.Version {
		// It answered the framing handshake with a version this sender
		// does not speak; gob is the lingua franca.
		return legacyPeer
	}
	return negotiated
}

// classifyNegotiateErr separates the legacy-decoder signature from
// transient breakage. A legacy gob receiver never acks: its decoder
// chokes on the preamble and CLOSES the stream, which the sender sees as
// EOF or a reset. A deadline expiry (v2 peer restarting between accept
// and ack, or slow under load) proves nothing and must not stick the
// peer on the slow codec.
func classifyNegotiateErr(err error) negotiationResult {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return legacyPeer
	}
	return negotiateFailed
}

// writeEnvelope frames one envelope onto the buffered stream with the
// codec negotiated at connect time.
func (w *peerWriter) writeEnvelope(env envelope) error {
	if w.gobEnc != nil {
		return w.gobEnc.Encode(env)
	}
	return wire.WriteEnvelope(w.bw, env)
}

// drop closes and forgets the current stream.
func (w *peerWriter) drop() {
	if w.conn != nil {
		w.conn.Close()
	}
	w.conn, w.bw, w.gobEnc = nil, nil, nil
}

// backoff sleeps min(base<<(fails-1), cap) plus up to 50% jitter,
// returning false if the transport closed while waiting.
func (t *transport) backoff(rng *rand.Rand, fails int) bool {
	d := backoffCap
	if shift := uint(fails - 1); shift < 6 {
		d = backoffBase << shift
	}
	if d > backoffCap {
		d = backoffCap
	}
	d += time.Duration(rng.Int63n(int64(d/2) + 1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.done:
		return false
	}
}
