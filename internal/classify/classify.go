// Package classify maps user keywords to document categories.
//
// The paper delegates this to commercial/academic text-categorization
// tools (Autonomy, Semio, SVM classifiers — its refs [5, 27, 32]) and
// treats the mapping as a black box. This package is the synthetic
// substitute documented in DESIGN.md: every category owns a small keyword
// vocabulary, and queries are classified by best keyword overlap. That
// preserves the only property the rest of the system depends on — a
// deterministic keywords→categories function.
package classify

import (
	"sort"
	"strings"

	"p2pshare/internal/catalog"
)

// Classifier answers keyword→category queries over a fixed catalog.
type Classifier struct {
	byKeyword map[string][]catalog.CategoryID
}

// New indexes the catalog's category keyword vocabularies.
func New(c *catalog.Catalog) *Classifier {
	cl := &Classifier{byKeyword: make(map[string][]catalog.CategoryID)}
	for i := range c.Cats {
		cat := &c.Cats[i]
		for _, kw := range cat.Keywords {
			kw = normalize(kw)
			cl.byKeyword[kw] = append(cl.byKeyword[kw], cat.ID)
		}
	}
	return cl
}

func normalize(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// Categories returns the categories matching the keywords, ranked by the
// number of matching keywords (descending, ties by id). Unknown keywords
// are ignored; no match yields an empty slice.
func (cl *Classifier) Categories(keywords []string) []catalog.CategoryID {
	score := make(map[catalog.CategoryID]int)
	for _, kw := range keywords {
		for _, cid := range cl.byKeyword[normalize(kw)] {
			score[cid]++
		}
	}
	out := make([]catalog.CategoryID, 0, len(score))
	for cid := range score {
		out = append(out, cid)
	}
	sort.Slice(out, func(i, j int) bool {
		if score[out[i]] != score[out[j]] {
			return score[out[i]] > score[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Best returns the single best-matching category and whether any matched.
func (cl *Classifier) Best(keywords []string) (catalog.CategoryID, bool) {
	cats := cl.Categories(keywords)
	if len(cats) == 0 {
		return catalog.NoCategory, false
	}
	return cats[0], true
}
