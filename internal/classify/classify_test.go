package classify

import (
	"math/rand"
	"testing"

	"p2pshare/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Generate(catalog.Config{NumDocs: 100, NumCats: 20, ThetaDocs: 0.8, ThetaCats: 0.7},
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBestExactKeyword(t *testing.T) {
	c := testCatalog(t)
	cl := New(c)
	for i := range c.Cats {
		// The per-category unique keyword (kw<i>) must resolve to it.
		got, ok := cl.Best([]string{c.Cats[i].Keywords[0]})
		if !ok || got != c.Cats[i].ID {
			t.Fatalf("keyword %q -> (%d, %v), want %d", c.Cats[i].Keywords[0], got, ok, c.Cats[i].ID)
		}
	}
}

func TestBestNoMatch(t *testing.T) {
	cl := New(testCatalog(t))
	if got, ok := cl.Best([]string{"zzz-nothing"}); ok || got != catalog.NoCategory {
		t.Errorf("unmatched keywords -> (%d, %v)", got, ok)
	}
	if got, ok := cl.Best(nil); ok || got != catalog.NoCategory {
		t.Errorf("empty keywords -> (%d, %v)", got, ok)
	}
}

func TestCategoriesRankedByOverlap(t *testing.T) {
	c := testCatalog(t)
	cl := New(c)
	// Two keywords of category 3 plus one shared genre keyword: category
	// 3 must rank first.
	kws := []string{c.Cats[3].Keywords[0], c.Cats[3].Keywords[1], c.Cats[3].Keywords[2]}
	got := cl.Categories(kws)
	if len(got) == 0 || got[0] != c.Cats[3].ID {
		t.Fatalf("Categories(%v) = %v, want leading %d", kws, got, c.Cats[3].ID)
	}
	// The shared genre keyword matches the whole decade of categories.
	genre := c.Cats[3].Keywords[2]
	matches := cl.Categories([]string{genre})
	if len(matches) < 2 {
		t.Errorf("genre keyword %q matched only %d categories", genre, len(matches))
	}
}

func TestNormalization(t *testing.T) {
	c := testCatalog(t)
	cl := New(c)
	kw := "  " + c.Cats[5].Keywords[0] + " "
	upper := []string{kw}
	got, ok := cl.Best(upper)
	if !ok || got != c.Cats[5].ID {
		t.Errorf("whitespace keyword not normalized: (%d, %v)", got, ok)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	c := testCatalog(t)
	cl := New(c)
	genre := c.Cats[0].Keywords[2] // shared by categories 0..9
	a := cl.Categories([]string{genre})
	b := cl.Categories([]string{genre})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ranking not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("equal-score categories not ordered by id")
		}
	}
}
