// Package p2pshare is a complete implementation of the peer-to-peer
// content and resource sharing architecture of Triantafillou, Xiruhaki,
// Koubarakis and Ntarmos, "Towards High Performance Peer-to-Peer Content
// and Resource Sharing Systems" (CIDR 2003).
//
// The architecture imposes a logical structure on the P2P network:
// documents are grouped into semantic categories, peers are clustered by
// the categories they contribute, and categories are assigned to clusters
// by the greedy MaxFair algorithm, which maximizes Jain's fairness index
// over normalized cluster popularities. Queries resolve keywords to a
// category, route to the serving cluster in one hop, and flood only
// within the cluster, giving constant-hop common-case response times and
// a cluster-size worst-case bound. A four-phase adaptation mechanism
// (monitoring, leader communication, fairness evaluation, lazy
// rebalancing) keeps the load fair as popularity, content, and peer
// populations drift.
//
// This package is the high-level facade: it assembles a synthetic peer
// community, balances it, places replicas, and runs the live overlay on a
// deterministic discrete-event simulator. The building blocks live in
// internal/ (core, overlay, replica, simnet, ...); the experiments
// regenerating every figure and table of the paper live in
// internal/experiments and are driven by cmd/experiments.
package p2pshare

import (
	"fmt"
	"math/rand"

	"p2pshare/internal/catalog"
	"p2pshare/internal/classify"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/query"
	"p2pshare/internal/replica"
	"p2pshare/internal/workload"
)

// Re-exported identifier types.
type (
	// NodeID identifies a peer node.
	NodeID = model.NodeID
	// ClusterID identifies a peer cluster.
	ClusterID = model.ClusterID
	// DocID identifies a document.
	DocID = catalog.DocID
	// CategoryID identifies a document category.
	CategoryID = catalog.CategoryID
	// Mode selects the intra-cluster content-location design (§3.1).
	Mode = overlay.Mode
)

// Intra-cluster design modes (§3.1).
const (
	// ModeFlood floods queries within the serving cluster (the §3.3
	// default).
	ModeFlood = overlay.ModeFlood
	// ModeSuperPeer routes queries through per-cluster metadata holders.
	ModeSuperPeer = overlay.ModeSuperPeer
	// ModeRoutingIndex forwards queries along per-neighbor reachability
	// counts instead of flooding.
	ModeRoutingIndex = overlay.ModeRoutingIndex
)

// Config assembles a synthetic sharing community. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Documents, Categories, Nodes, Clusters size the community. The
	// paper's full-scale evaluation uses 200 000 documents, 500
	// categories, 20 000 nodes, and 100 clusters.
	Documents  int
	Categories int
	Nodes      int
	Clusters   int
	// ThetaDocs is the Zipf skew of document popularity (paper: 0.8).
	ThetaDocs float64
	// ThetaCats is the Zipf skew used when assigning documents to
	// categories (paper: 0.7); set UniformCategories to ignore it.
	ThetaCats float64
	// UniformCategories assigns documents to categories uniformly (the
	// paper's second scenario) instead of by Zipf sampling.
	UniformCategories bool
	// Replication configures the intra-cluster replica placement
	// (§4.3.3): NReps copies per document, the top HotMass of each
	// cluster's popularity replicated everywhere.
	Replication replica.Config
	// Mode selects the intra-cluster content-location design (§3.1);
	// the zero value is ModeFlood.
	Mode Mode
	// Seed makes the whole community and simulation reproducible.
	Seed int64
}

// DefaultConfig returns a laptop-scale community with the paper's shape.
func DefaultConfig() Config {
	return Config{
		Documents:   20000,
		Categories:  500,
		Nodes:       2000,
		Clusters:    100,
		ThetaDocs:   0.8,
		ThetaCats:   0.7,
		Replication: replica.DefaultConfig(),
		Seed:        1,
	}
}

// QueryResult reports one query's outcome. It is the unified result type
// shared with the live TCP engine (internal/livenet returns the same
// struct from Node.QueryContext), so code driving both the simulator and
// a live deployment handles one shape.
type QueryResult = query.Result

// Sentinel errors shared across the facade and the live engine
// (internal/livenet aliases the same values); match them with errors.Is.
var (
	// ErrNoRoute reports a category that cannot be routed to any serving
	// cluster member.
	ErrNoRoute = query.ErrNoRoute
	// ErrTimeout reports a query that did not complete before its
	// deadline; the partial outcome accompanies it.
	ErrTimeout = query.ErrTimeout
	// ErrClosed reports an API call on a node or system that has shut
	// down.
	ErrClosed = query.ErrClosed
	// ErrOverloaded reports a query rejected by a node's admission
	// control (too many in-flight queries).
	ErrOverloaded = query.ErrOverloaded
)

// Balance describes the current load-balance state of the community.
type Balance struct {
	// Fairness is Jain's index over normalized cluster popularities
	// (1 = perfectly fair; the paper reports > 0.95 from MaxFair).
	Fairness float64
	// NormalizedPopularities is indexed by cluster.
	NormalizedPopularities []float64
}

// System is a running sharing community.
type System struct {
	cfg      Config
	inst     *model.Instance
	state    *core.State
	overlay  *overlay.System
	classif  *classify.Classifier
	gen      *workload.Generator
	rng      *rand.Rand
	reshaped bool
}

// New generates a synthetic community from cfg, balances it with MaxFair,
// places replicas, and boots the overlay.
func New(cfg Config) (*System, error) {
	mcfg := model.DefaultConfig()
	mcfg.Catalog.NumDocs = cfg.Documents
	mcfg.Catalog.NumCats = cfg.Categories
	mcfg.Catalog.ThetaDocs = cfg.ThetaDocs
	mcfg.Catalog.ThetaCats = cfg.ThetaCats
	if cfg.UniformCategories {
		mcfg.Catalog.CatAssign = catalog.AssignUniform
	}
	mcfg.NumNodes = cfg.Nodes
	mcfg.NumClusters = cfg.Clusters
	mcfg.Seed = cfg.Seed

	inst, err := model.Generate(mcfg)
	if err != nil {
		return nil, fmt.Errorf("p2pshare: generate community: %w", err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("p2pshare: balance: %w", err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, fmt.Errorf("p2pshare: membership: %w", err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, cfg.Replication)
	if err != nil {
		return nil, fmt.Errorf("p2pshare: replica placement: %w", err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Seed = cfg.Seed
	ocfg.Mode = cfg.Mode
	sys, err := overlay.NewSystem(inst, res.Assignment, place, ocfg)
	if err != nil {
		return nil, fmt.Errorf("p2pshare: overlay: %w", err)
	}
	gen, err := workload.NewGenerator(inst, 3, cfg.Seed+7)
	if err != nil {
		return nil, fmt.Errorf("p2pshare: workload: %w", err)
	}
	return &System{
		cfg:     cfg,
		inst:    inst,
		state:   res.State,
		overlay: sys,
		classif: classify.New(inst.Catalog),
		gen:     gen,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1000)),
	}, nil
}

// NumNodes returns the peer count (including nodes added at runtime).
func (s *System) NumNodes() int { return s.overlay.NumPeers() }

// NumCategories returns the category count.
func (s *System) NumCategories() int { return s.inst.CatCount() }

// NumDocuments returns the document count.
func (s *System) NumDocuments() int { return s.inst.DocCount() }

// CategoryKeywords returns the keyword vocabulary of a category, usable as
// query keywords.
func (s *System) CategoryKeywords(c CategoryID) []string {
	cat := s.inst.Catalog.Cat(c)
	if cat == nil {
		return nil
	}
	return append([]string(nil), cat.Keywords...)
}

// Query submits a keyword query from the origin node asking for m results
// (the §3.3 protocol: keywords → category → cluster → random node →
// in-cluster search) and runs the network until quiescent.
func (s *System) Query(origin NodeID, keywords []string, m int) (QueryResult, error) {
	if int(origin) >= s.overlay.NumPeers() {
		return QueryResult{}, fmt.Errorf("p2pshare: unknown node %d", origin)
	}
	id, err := s.overlay.IssueQueryKeywords(origin, s.classif.Best, keywords, m)
	if err != nil {
		return QueryResult{}, err
	}
	if err := s.overlay.Run(); err != nil {
		return QueryResult{}, err
	}
	rep, ok := s.overlay.QueryReport(origin, id)
	if !ok {
		return QueryResult{}, fmt.Errorf("p2pshare: lost query %d", id)
	}
	return QueryResult{
		Done:         rep.Done,
		Results:      rep.Results,
		Hops:         rep.Hops,
		ResponseTime: rep.ResponseTime,
	}, nil
}

// QueryCategory is Query with a resolved category (skips classification).
func (s *System) QueryCategory(origin NodeID, cat CategoryID, m int) (QueryResult, error) {
	if s.inst.Catalog.Cat(cat) == nil {
		return QueryResult{}, fmt.Errorf("p2pshare: unknown category %d", cat)
	}
	if int(origin) >= s.overlay.NumPeers() {
		return QueryResult{}, fmt.Errorf("p2pshare: unknown node %d", origin)
	}
	id := s.overlay.IssueQuery(origin, cat, m)
	if err := s.overlay.Run(); err != nil {
		return QueryResult{}, err
	}
	rep, ok := s.overlay.QueryReport(origin, id)
	if !ok {
		return QueryResult{}, fmt.Errorf("p2pshare: lost query %d", id)
	}
	return QueryResult{
		Done:         rep.Done,
		Results:      rep.Results,
		Hops:         rep.Hops,
		ResponseTime: rep.ResponseTime,
	}, nil
}

// RunWorkload issues n popularity-faithful queries from random origins and
// returns the completion rate.
func (s *System) RunWorkload(n int) (completed float64, err error) {
	type issued struct {
		origin NodeID
		id     uint64
	}
	all := make([]issued, 0, n)
	for i := 0; i < n; i++ {
		q := s.gen.Next()
		all = append(all, issued{q.Origin, s.overlay.IssueQuery(q.Origin, q.Category, q.M)})
	}
	if err := s.overlay.Run(); err != nil {
		return 0, err
	}
	done := 0
	for _, q := range all {
		if rep, ok := s.overlay.QueryReport(q.origin, q.id); ok && rep.Done {
			done++
		}
	}
	if n == 0 {
		return 1, nil
	}
	return float64(done) / float64(n), nil
}

// PublishNew creates a brand-new document with the given popularity share
// (carved out of the existing mass), contributed and published by node n.
// It returns the new document's id.
func (s *System) PublishNew(n NodeID, popularityShare float64) (DocID, error) {
	ids, err := s.inst.Catalog.AddDocuments(1, popularityShare, 0.8, s.rng)
	if err != nil {
		return 0, err
	}
	if err := s.inst.AttachDocument(ids[0], n); err != nil {
		return 0, err
	}
	if err := s.overlay.Publish(n, ids[0]); err != nil {
		return 0, err
	}
	if err := s.overlay.Run(); err != nil {
		return 0, err
	}
	s.reshaped = true
	return ids[0], nil
}

// Join adds a fresh node with the given compute units to the community,
// bootstrapping through an existing member (the §6.3 join protocol). The
// node joins as a free rider; use PublishNew afterwards to contribute.
func (s *System) Join(units float64, bootstrap NodeID) (NodeID, error) {
	id := s.overlay.AddNode(units, 1<<40)
	if err := s.overlay.Join(id, bootstrap); err != nil {
		return 0, err
	}
	if err := s.overlay.Run(); err != nil {
		return 0, err
	}
	return id, nil
}

// Leave removes a node (the §6.3 departure path: cluster mates are
// notified and orphaned documents are adopted).
func (s *System) Leave(n NodeID) error {
	if int(n) >= s.overlay.NumPeers() {
		return fmt.Errorf("p2pshare: unknown node %d", n)
	}
	s.overlay.Leave(n)
	return s.overlay.Run()
}

// ShiftPopularity re-randomizes document popularity ranks (content
// popularity drift, §6.1) and refreshes the workload generator.
func (s *System) ShiftPopularity() error {
	s.inst.Catalog.ShiftPopularity(s.cfg.ThetaDocs, s.rng)
	gen, err := workload.NewGenerator(s.inst, 3, s.cfg.Seed+7)
	if err != nil {
		return err
	}
	s.gen = gen
	s.reshaped = true
	return nil
}

// Adapt runs one full §6.1 adaptation round (leader election, monitoring,
// leader communication, fairness evaluation, rebalancing + lazy transfer)
// and returns its report.
func (s *System) Adapt() (*overlay.AdaptationReport, error) {
	return s.overlay.RunAdaptation(4)
}

// PlannedBalance returns the balance of the *planned* assignment: the
// MaxFair state evaluated against current category popularities. After
// catalog changes it rebuilds the state first.
func (s *System) PlannedBalance() (Balance, error) {
	if s.reshaped {
		if err := s.state.Rebuild(s.inst); err != nil {
			return Balance{}, err
		}
		s.reshaped = false
	}
	return Balance{
		Fairness:               s.state.Fairness(),
		NormalizedPopularities: s.state.NormalizedPopularities(),
	}, nil
}

// MeasuredBalance returns the balance of *measured* load: per-cluster
// served requests normalized by live capacity.
func (s *System) MeasuredBalance() Balance {
	xs := s.overlay.MeasuredNormalizedLoads()
	return Balance{
		Fairness:               fairness.Jain(xs),
		NormalizedPopularities: xs,
	}
}

// ResetLoadCounters zeroes the per-node served-request counters.
func (s *System) ResetLoadCounters() { s.overlay.ResetHitCounters() }

// ServedLoads returns the per-node served-request counts.
func (s *System) ServedLoads() []float64 { return s.overlay.ServedLoads() }

// Overlay exposes the underlying overlay system for advanced scenarios
// (killing nodes, traffic statistics, direct protocol access).
func (s *System) Overlay() *overlay.System { return s.overlay }
